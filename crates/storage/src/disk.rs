//! The disk manager and the `PageStore` seam.
//!
//! [`PageStore`] is the interception point the whole compliance architecture
//! hangs off: the compliance logger is a decorator over any `PageStore`,
//! exactly like the paper's plugin over Berkeley DB's pread/pwrite.
//!
//! [`DiskManager`] is the concrete store: one ordinary file of 4 KiB pages
//! (on *read/write media* — this file is what the adversary can edit with a
//! file editor). Page numbers are allocated by extending the file and are
//! never reused.

use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ccdb_common::sync::Mutex;
use ccdb_common::{Error, PageNo, Result};

use crate::fault::{FaultInjector, Injection, IoPoint};
use crate::page::{Page, PAGE_SIZE};

/// The pread/pwrite seam. Implementations must be usable from behind an
/// `Arc` (interior mutability), mirroring a kernel I/O interface.
pub trait PageStore: Send + Sync {
    /// Reads the page image for `pgno`.
    fn pread(&self, pgno: PageNo) -> Result<Page>;

    /// Writes the page image. The page's checksum is finalized by the store.
    fn pwrite(&self, page: &mut Page) -> Result<()>;

    /// Allocates a fresh, never-before-used page number.
    fn allocate(&self) -> Result<PageNo>;

    /// Number of pages ever allocated.
    fn page_count(&self) -> u64;

    /// Flushes OS buffers (fsync).
    fn sync(&self) -> Result<()>;
}

/// A file-backed page store on conventional read/write media.
pub struct DiskManager {
    path: PathBuf,
    file: Mutex<fs::File>,
    next_pgno: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    /// Artificial per-I/O latency in microseconds (benchmark knob emulating
    /// remote storage — the paper's database lived on an NFS-mounted filer).
    io_latency_us: AtomicU64,
    /// Latency model: `false` = spin (exact, but occupies a core — right for
    /// single-stream runs), `true` = sleep (blocking-I/O semantics: waiting
    /// threads yield the core, so concurrent readers overlap their waits —
    /// right for the parallel-audit benchmarks).
    io_latency_sleep: AtomicBool,
    /// Optional deterministic fault layer (crash/torn-write torture tests).
    injector: Mutex<Option<Arc<FaultInjector>>>,
}

impl DiskManager {
    /// Opens (or creates) the database file at `path`. The allocation
    /// high-water mark is derived from the file length, so it survives
    /// crashes without separate metadata.
    pub fn open(path: impl AsRef<Path>) -> Result<DiskManager> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)
                    .map_err(|e| Error::io("creating database directory", e))?;
            }
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| Error::io(format!("opening database file {}", path.display()), e))?;
        let len = file.metadata().map_err(|e| Error::io("statting database file", e))?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(Error::corruption(format!(
                "database file length {len} is not a multiple of the page size"
            )));
        }
        Ok(DiskManager {
            path,
            file: Mutex::new(file),
            next_pgno: AtomicU64::new(len / PAGE_SIZE as u64),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            io_latency_us: AtomicU64::new(0),
            io_latency_sleep: AtomicBool::new(false),
            injector: Mutex::new(None),
        })
    }

    /// Installs (or removes) the deterministic fault injector. All physical
    /// preads/pwrites/fsyncs consult it first.
    pub fn set_fault_injector(&self, inj: Option<Arc<FaultInjector>>) {
        *self.injector.lock() = inj;
    }

    fn injection(&self, point: IoPoint, payload_len: usize) -> Injection {
        match self.injector.lock().as_ref() {
            Some(inj) => inj.check(point, payload_len),
            None => Injection::Proceed,
        }
    }

    /// `true` if an installed injector has fired a crash fault.
    pub fn fault_crashed(&self) -> bool {
        self.injector.lock().as_ref().is_some_and(|i| i.crashed())
    }

    /// The backing file path (the adversary crate edits this directly).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sets the artificial per-I/O latency (0 disables).
    pub fn set_io_latency_us(&self, us: u64) {
        self.io_latency_us.store(us, Ordering::Relaxed);
    }

    /// Chooses the latency model: `true` sleeps (blocking-I/O semantics —
    /// concurrent readers overlap their waits, which is what the parallel
    /// auditor exploits), `false` spins (default; exact single-stream
    /// emulation unaffected by OS timer granularity).
    pub fn set_io_latency_sleep(&self, sleep: bool) {
        self.io_latency_sleep.store(sleep, Ordering::Relaxed);
    }

    fn simulate_latency(&self) {
        let us = self.io_latency_us.load(Ordering::Relaxed);
        if us > 0 {
            if self.io_latency_sleep.load(Ordering::Relaxed) {
                // Blocking-I/O model: the waiting thread yields the core, so
                // N concurrent readers pay ~1x the latency, not Nx — the
                // behavior of a real remote filer under parallel requests.
                std::thread::sleep(std::time::Duration::from_micros(us));
            } else {
                // Spin rather than sleep: OS sleep granularity (~1 ms) would
                // inflate the emulated latency ~10x. For a single-stream
                // benchmark a spin models blocking I/O time exactly.
                let deadline = std::time::Instant::now() + std::time::Duration::from_micros(us);
                while std::time::Instant::now() < deadline {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Number of physical preads served.
    pub fn read_count(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of physical pwrites served.
    pub fn write_count(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Reads a raw page image without constructing a `Page` (used by the
    /// auditor, which wants to see exactly what is on disk even if it is
    /// garbage). Pays the emulated I/O latency like `pread` — the auditor's
    /// final-state scan hits the same (emulated-remote) medium the engine
    /// does.
    pub fn read_raw(&self, pgno: PageNo) -> Result<Vec<u8>> {
        self.simulate_latency();
        self.read_raw_inner(pgno)
    }

    /// The physical read, with no latency emulation. The latency is charged
    /// *outside* the file lock (in `read_raw`/`pread`), so concurrent reads
    /// under the sleep model overlap their waits and only serialize on the
    /// microseconds of actual file I/O.
    fn read_raw_inner(&self, pgno: PageNo) -> Result<Vec<u8>> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(pgno.0 * PAGE_SIZE as u64))
            .map_err(|e| Error::io("seeking database file", e))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read_exact(&mut buf).map_err(|e| Error::io(format!("reading raw page {pgno}"), e))?;
        Ok(buf)
    }
}

impl PageStore for DiskManager {
    fn pread(&self, pgno: PageNo) -> Result<Page> {
        if pgno.0 >= self.next_pgno.load(Ordering::SeqCst) {
            return Err(Error::NotFound(format!("page {pgno} beyond end of database")));
        }
        match self.injection(IoPoint::PageRead, 0) {
            Injection::Proceed => {}
            Injection::Fail(e) => return Err(e),
            Injection::Torn { .. } => return Err(Error::injected("torn fault at read site")),
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.simulate_latency();
        let buf = self.read_raw_inner(pgno)?;
        let page = Page::from_bytes(&buf)?;
        if page.pgno() != pgno {
            return Err(Error::corruption(format!(
                "page at slot {pgno} claims to be {}",
                page.pgno()
            )));
        }
        Ok(page)
    }

    fn pwrite(&self, page: &mut Page) -> Result<()> {
        let pgno = page.pgno();
        if pgno.0 >= self.next_pgno.load(Ordering::SeqCst) {
            return Err(Error::Invalid(format!("pwrite of unallocated page {pgno}")));
        }
        let torn_keep = match self.injection(IoPoint::PageWrite, PAGE_SIZE) {
            Injection::Proceed => None,
            Injection::Fail(e) => return Err(e),
            Injection::Torn { keep } => Some(keep),
        };
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.simulate_latency();
        let img = page.finalize_for_write().to_vec();
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(pgno.0 * PAGE_SIZE as u64))
            .map_err(|e| Error::io("seeking database file", e))?;
        if let Some(keep) = torn_keep {
            // Torn write: only a prefix of the page image reaches the medium
            // before the simulated power loss.
            f.write_all(&img[..keep])
                .map_err(|e| Error::io(format!("torn write of page {pgno}"), e))?;
            return Err(Error::injected(format!("torn write of page {pgno} ({keep} bytes kept)")));
        }
        f.write_all(&img).map_err(|e| Error::io(format!("writing page {pgno}"), e))?;
        Ok(())
    }

    fn allocate(&self) -> Result<PageNo> {
        if self.fault_crashed() {
            return Err(Error::injected("post-crash allocate suppressed"));
        }
        let pgno = PageNo(self.next_pgno.fetch_add(1, Ordering::SeqCst));
        // Extend the file with a zeroed (Free) placeholder so pread of an
        // allocated-but-unwritten page fails loudly on the magic check rather
        // than reading a short file.
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(pgno.0 * PAGE_SIZE as u64))
            .map_err(|e| Error::io("seeking database file", e))?;
        f.write_all(&[0u8; PAGE_SIZE]).map_err(|e| Error::io("extending database file", e))?;
        Ok(pgno)
    }

    fn page_count(&self) -> u64 {
        self.next_pgno.load(Ordering::SeqCst)
    }

    fn sync(&self) -> Result<()> {
        if let Some(inj) = self.injector.lock().clone() {
            inj.check_fatal(IoPoint::PageSync)?;
        }
        self.file.lock().sync_data().map_err(|e| Error::io("fsync of database file", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;
    use ccdb_common::RelId;

    struct TempFile(PathBuf);
    impl TempFile {
        fn new(tag: &str) -> TempFile {
            let p = std::env::temp_dir().join(format!(
                "ccdb-disk-{}-{}-{}.db",
                std::process::id(),
                tag,
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            TempFile(p)
        }
    }
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
        }
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let tf = TempFile::new("rt");
        let dm = DiskManager::open(&tf.0).unwrap();
        let pgno = dm.allocate().unwrap();
        assert_eq!(pgno, PageNo(0));
        let mut p = Page::new(pgno, PageType::Leaf, RelId(1));
        p.append_cell(b"cell").unwrap();
        dm.pwrite(&mut p).unwrap();
        let q = dm.pread(pgno).unwrap();
        assert_eq!(q.cell(0), b"cell");
        assert!(q.verify_checksum());
    }

    #[test]
    fn pgnos_never_reused() {
        let tf = TempFile::new("mono");
        let dm = DiskManager::open(&tf.0).unwrap();
        let a = dm.allocate().unwrap();
        let b = dm.allocate().unwrap();
        let c = dm.allocate().unwrap();
        assert!(a < b && b < c);
        assert_eq!(dm.page_count(), 3);
    }

    #[test]
    fn reopen_preserves_allocation_watermark() {
        let tf = TempFile::new("reopen");
        {
            let dm = DiskManager::open(&tf.0).unwrap();
            for _ in 0..5 {
                dm.allocate().unwrap();
            }
        }
        let dm2 = DiskManager::open(&tf.0).unwrap();
        assert_eq!(dm2.page_count(), 5);
        assert_eq!(dm2.allocate().unwrap(), PageNo(5));
    }

    #[test]
    fn read_of_unallocated_page_fails() {
        let tf = TempFile::new("oob");
        let dm = DiskManager::open(&tf.0).unwrap();
        assert!(dm.pread(PageNo(0)).is_err());
    }

    #[test]
    fn read_of_allocated_unwritten_page_fails_on_magic() {
        let tf = TempFile::new("unwritten");
        let dm = DiskManager::open(&tf.0).unwrap();
        let pgno = dm.allocate().unwrap();
        assert!(dm.pread(pgno).is_err());
    }

    #[test]
    fn pwrite_of_unallocated_page_rejected() {
        let tf = TempFile::new("badw");
        let dm = DiskManager::open(&tf.0).unwrap();
        let mut p = Page::new(PageNo(9), PageType::Leaf, RelId(1));
        assert!(dm.pwrite(&mut p).is_err());
    }

    #[test]
    fn mismatched_pgno_detected() {
        let tf = TempFile::new("swap");
        let dm = DiskManager::open(&tf.0).unwrap();
        let a = dm.allocate().unwrap();
        let b = dm.allocate().unwrap();
        let mut pa = Page::new(a, PageType::Leaf, RelId(1));
        dm.pwrite(&mut pa).unwrap();
        // An adversary copies page a's image over page b's slot.
        let img = dm.read_raw(a).unwrap();
        {
            let mut f = fs::OpenOptions::new().write(true).open(&tf.0).unwrap();
            f.seek(SeekFrom::Start(b.0 * PAGE_SIZE as u64)).unwrap();
            f.write_all(&img).unwrap();
        }
        assert!(dm.pread(b).is_err());
    }

    #[test]
    fn injected_crash_stops_all_io() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan, IoPoint};
        let tf = TempFile::new("inj-crash");
        let dm = DiskManager::open(&tf.0).unwrap();
        let inj = Arc::new(FaultInjector::armed(FaultPlan::single(
            IoPoint::PageWrite,
            2,
            FaultKind::Crash,
        )));
        dm.set_fault_injector(Some(inj.clone()));
        let a = dm.allocate().unwrap();
        let b = dm.allocate().unwrap();
        let mut pa = Page::new(a, PageType::Leaf, RelId(1));
        dm.pwrite(&mut pa).unwrap();
        let mut pb = Page::new(b, PageType::Leaf, RelId(1));
        let err = dm.pwrite(&mut pb).unwrap_err();
        assert!(err.is_injected(), "{err}");
        assert!(inj.crashed());
        // The simulated process is dead: reads fail too, and nothing mutates.
        assert!(dm.pread(a).unwrap_err().is_injected());
        assert!(dm.allocate().unwrap_err().is_injected());
        assert!(dm.sync().unwrap_err().is_injected());
    }

    #[test]
    fn injected_torn_page_write_persists_prefix_only() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan, IoPoint};
        let tf = TempFile::new("inj-torn");
        let dm = DiskManager::open(&tf.0).unwrap();
        let pgno = dm.allocate().unwrap();
        let mut p = Page::new(pgno, PageType::Leaf, RelId(1));
        p.append_cell(b"first image").unwrap();
        dm.pwrite(&mut p).unwrap();
        // Arm a half-page tear for the next write of the same slot.
        dm.set_fault_injector(Some(Arc::new(FaultInjector::armed(FaultPlan::single(
            IoPoint::PageWrite,
            1,
            FaultKind::Torn { keep_permille: 500 },
        )))));
        let mut p2 = Page::new(pgno, PageType::Leaf, RelId(1));
        for _ in 0..20 {
            p2.append_cell(b"second image, bigger").unwrap();
        }
        assert!(dm.pwrite(&mut p2).unwrap_err().is_injected());
        // Disarm (simulating a post-crash reopen) and inspect what survived:
        // the slot holds the new header prefix over the old image's suffix —
        // a checksum-failing frankenpage, exactly what a real torn write
        // leaves behind.
        dm.set_fault_injector(None);
        let raw = dm.read_raw(pgno).unwrap();
        let fresh = p2.finalize_for_write().to_vec();
        assert_eq!(&raw[..PAGE_SIZE / 2], &fresh[..PAGE_SIZE / 2]);
        assert_ne!(&raw[PAGE_SIZE / 2..], &fresh[PAGE_SIZE / 2..]);
        let err = dm.pread(pgno).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)), "torn page must read as corruption: {err}");
    }

    #[test]
    fn injected_transient_error_is_retryable() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan, IoPoint};
        let tf = TempFile::new("inj-transient");
        let dm = DiskManager::open(&tf.0).unwrap();
        let pgno = dm.allocate().unwrap();
        let mut p = Page::new(pgno, PageType::Leaf, RelId(1));
        dm.pwrite(&mut p).unwrap();
        dm.set_fault_injector(Some(Arc::new(FaultInjector::armed(FaultPlan::single(
            IoPoint::PageRead,
            1,
            FaultKind::Transient,
        )))));
        assert!(dm.pread(pgno).unwrap_err().is_injected());
        // The very next read succeeds.
        assert!(dm.pread(pgno).is_ok());
    }

    #[test]
    fn io_counters_track() {
        let tf = TempFile::new("ctr");
        let dm = DiskManager::open(&tf.0).unwrap();
        let pgno = dm.allocate().unwrap();
        let mut p = Page::new(pgno, PageType::Leaf, RelId(1));
        dm.pwrite(&mut p).unwrap();
        dm.pread(pgno).unwrap();
        dm.pread(pgno).unwrap();
        assert_eq!(dm.write_count(), 1);
        assert_eq!(dm.read_count(), 2);
    }
}
