//! Deterministic fault injection for the I/O stack.
//!
//! The paper's central robustness claim is that *crash recovery cannot be
//! used as a tampering vector*: after any unclean shutdown the auditor must
//! still establish tuple completeness (`Df = Ds ∪ L`) against the WORM log.
//! Exercising that claim requires crashing the system at arbitrary points in
//! its I/O stream — reproducibly. This module is the mechanism:
//!
//! * [`FaultPlan`] — a declarative schedule: "at the Nth operation of kind K,
//!   do X", where X is a process crash, a torn write (persist only a prefix
//!   of the payload, then crash), or a transient error.
//! * [`FaultInjector`] — the armed runtime object. Instrumented I/O sites
//!   ([`DiskManager`](crate::DiskManager), the WAL appender, the WORM server
//!   append path) call [`FaultInjector::check`] before each physical
//!   operation and obey the returned [`Injection`].
//!
//! Determinism contract: a plan is pure data. Driving the same workload with
//! the same plan fires the same fault at the same byte. The crash-torture
//! harness derives plans from printed seeds, so any failure replays exactly.
//!
//! After a `Crash` or `Torn` fault fires, the injector enters the *crashed*
//! state: every subsequent checked operation fails with
//! [`Error::Injected`](ccdb_common::Error::Injected). This models the
//! process being gone — nothing else reaches the disk — and guarantees that
//! a workload cannot "write through" its own crash.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ccdb_common::sync::Mutex;
use ccdb_common::{Error, Result};

/// The instrumented operations of the I/O stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoPoint {
    /// A physical page read (`DiskManager::pread`).
    PageRead,
    /// A physical page write (`DiskManager::pwrite`).
    PageWrite,
    /// An fsync of the database file (`DiskManager::sync`).
    PageSync,
    /// A WAL record append (buffered; a crash here loses the pending tail).
    WalAppend,
    /// A WAL flush (the write+fsync of buffered records — the torn-write
    /// site for the log).
    WalFlush,
    /// An append to a WORM compliance-log file.
    WormAppend,
}

impl IoPoint {
    /// All instrumented points, in a stable order (used by schedules and
    /// reporting).
    pub const ALL: [IoPoint; 6] = [
        IoPoint::PageRead,
        IoPoint::PageWrite,
        IoPoint::PageSync,
        IoPoint::WalAppend,
        IoPoint::WalFlush,
        IoPoint::WormAppend,
    ];

    fn index(self) -> usize {
        match self {
            IoPoint::PageRead => 0,
            IoPoint::PageWrite => 1,
            IoPoint::PageSync => 2,
            IoPoint::WalAppend => 3,
            IoPoint::WalFlush => 4,
            IoPoint::WormAppend => 5,
        }
    }

    /// Short stable name (seed reports, logs).
    pub fn name(self) -> &'static str {
        match self {
            IoPoint::PageRead => "page-read",
            IoPoint::PageWrite => "page-write",
            IoPoint::PageSync => "page-sync",
            IoPoint::WalAppend => "wal-append",
            IoPoint::WalFlush => "wal-flush",
            IoPoint::WormAppend => "worm-append",
        }
    }
}

/// What happens when an armed fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The process dies: the operation fails with no side effects and every
    /// later operation fails too.
    Crash,
    /// A torn write: only the first `keep_permille`/1000 of the payload
    /// reaches the medium, then the process dies. At a read site (where
    /// there is nothing to tear) this degrades to [`FaultKind::Crash`].
    Torn {
        /// Fraction of the payload persisted, in permille of its length.
        keep_permille: u16,
    },
    /// A transient I/O error: this one operation fails, the system lives on.
    Transient,
}

/// One armed fault: fire `kind` at the `at_count`-th operation (1-based) of
/// `point`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Which instrumented operation to intercept.
    pub point: IoPoint,
    /// 1-based ordinal of the intercepted operation.
    pub at_count: u64,
    /// What to do when it fires.
    pub kind: FaultKind,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} at {} #{}", self.kind, self.point.name(), self.at_count)
    }
}

/// A deterministic fault schedule: pure data, buildable from a seed by the
/// torture harness and printable for replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The armed faults. Multiple faults may be armed (e.g. a transient
    /// error followed by a crash); each fires at most once.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (the injector only counts operations).
    pub fn none() -> FaultPlan {
        FaultPlan { faults: Vec::new() }
    }

    /// A plan with a single fault.
    pub fn single(point: IoPoint, at_count: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan { faults: vec![Fault { point, at_count, kind }] }
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, point: IoPoint, at_count: u64, kind: FaultKind) -> FaultPlan {
        self.faults.push(Fault { point, at_count, kind });
        self
    }
}

/// The instruction an instrumented I/O site receives for one operation.
#[derive(Debug)]
pub enum Injection {
    /// Perform the operation normally.
    Proceed,
    /// Fail the operation with this error; perform no side effects.
    Fail(Error),
    /// Persist only the first `keep` bytes of the payload, then fail with
    /// [`Error::Injected`]. Only returned at write sites.
    Torn {
        /// Number of leading payload bytes to persist.
        keep: usize,
    },
}

/// Per-run armed injector. Shared (behind `Arc`) by every instrumented
/// component of one database instance.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: Mutex<Vec<Fault>>,
    counts: [AtomicU64; 6],
    crashed: AtomicBool,
    fired: Mutex<Vec<Fault>>,
}

impl FaultInjector {
    /// An injector with no armed faults: counts operations only. Used by the
    /// torture harness's profiling pass to learn a workload's I/O shape.
    pub fn counting() -> FaultInjector {
        FaultInjector::armed(FaultPlan::none())
    }

    /// Arms a plan.
    pub fn armed(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan: Mutex::new(plan.faults),
            counts: Default::default(),
            crashed: AtomicBool::new(false),
            fired: Mutex::new(Vec::new()),
        }
    }

    /// The heart of the mechanism: called by an instrumented site before a
    /// physical operation on `payload_len` bytes (0 where meaningless).
    pub fn check(&self, point: IoPoint, payload_len: usize) -> Injection {
        if self.crashed.load(Ordering::SeqCst) {
            return Injection::Fail(Error::injected(format!(
                "post-crash {} suppressed",
                point.name()
            )));
        }
        let n = self.counts[point.index()].fetch_add(1, Ordering::SeqCst) + 1;
        let hit = {
            let mut plan = self.plan.lock();
            plan.iter().position(|f| f.point == point && f.at_count == n).map(|i| plan.remove(i))
        };
        let Some(fault) = hit else { return Injection::Proceed };
        self.fired.lock().push(fault);
        match fault.kind {
            FaultKind::Crash => {
                self.crashed.store(true, Ordering::SeqCst);
                Injection::Fail(Error::injected(format!("crash at {} #{n}", point.name())))
            }
            FaultKind::Torn { keep_permille } => {
                self.crashed.store(true, Ordering::SeqCst);
                if payload_len == 0 {
                    // Nothing to tear (e.g. a read): degrade to a crash.
                    Injection::Fail(Error::injected(format!(
                        "crash (torn, empty payload) at {} #{n}",
                        point.name()
                    )))
                } else {
                    let keep =
                        (payload_len as u64 * u64::from(keep_permille.min(999)) / 1000) as usize;
                    Injection::Torn { keep }
                }
            }
            FaultKind::Transient => Injection::Fail(Error::injected(format!(
                "transient I/O error at {} #{n}",
                point.name()
            ))),
        }
    }

    /// Convenience for sites with nothing tearable: maps [`Injection::Torn`]
    /// to an error as well, returning `Ok(())` only on `Proceed`.
    pub fn check_fatal(&self, point: IoPoint) -> Result<()> {
        match self.check(point, 0) {
            Injection::Proceed => Ok(()),
            Injection::Fail(e) => Err(e),
            Injection::Torn { .. } => {
                Err(Error::injected(format!("torn at untearable {}", point.name())))
            }
        }
    }

    /// `true` once a `Crash`/`Torn` fault has fired (the simulated process
    /// is dead; all further I/O through this injector fails).
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Operations observed so far at `point` (including the faulted one).
    pub fn count(&self, point: IoPoint) -> u64 {
        self.counts[point.index()].load(Ordering::SeqCst)
    }

    /// All observed counts, indexed like [`IoPoint::ALL`].
    pub fn counts(&self) -> [u64; 6] {
        IoPoint::ALL.map(|p| self.count(p))
    }

    /// The faults that have fired, in firing order.
    pub fn fired(&self) -> Vec<Fault> {
        self.fired.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_injector_never_fires() {
        let inj = FaultInjector::counting();
        for _ in 0..100 {
            assert!(matches!(inj.check(IoPoint::PageWrite, 4096), Injection::Proceed));
        }
        assert_eq!(inj.count(IoPoint::PageWrite), 100);
        assert!(!inj.crashed());
        assert!(inj.fired().is_empty());
    }

    #[test]
    fn crash_fires_at_exact_ordinal_then_fails_everything() {
        let inj = FaultInjector::armed(FaultPlan::single(IoPoint::PageWrite, 3, FaultKind::Crash));
        assert!(matches!(inj.check(IoPoint::PageWrite, 10), Injection::Proceed));
        assert!(matches!(inj.check(IoPoint::PageWrite, 10), Injection::Proceed));
        assert!(matches!(inj.check(IoPoint::PageWrite, 10), Injection::Fail(_)));
        assert!(inj.crashed());
        // Every point now fails, not just the armed one.
        assert!(matches!(inj.check(IoPoint::PageRead, 0), Injection::Fail(_)));
        assert!(matches!(inj.check(IoPoint::WalFlush, 64), Injection::Fail(_)));
        assert_eq!(inj.fired().len(), 1);
    }

    #[test]
    fn torn_keeps_prefix_and_crashes() {
        let inj = FaultInjector::armed(FaultPlan::single(
            IoPoint::WalFlush,
            1,
            FaultKind::Torn { keep_permille: 500 },
        ));
        match inj.check(IoPoint::WalFlush, 1000) {
            Injection::Torn { keep } => assert_eq!(keep, 500),
            other => panic!("expected torn, got {other:?}"),
        }
        assert!(inj.crashed());
    }

    #[test]
    fn torn_on_read_degrades_to_crash() {
        let inj = FaultInjector::armed(FaultPlan::single(
            IoPoint::PageRead,
            1,
            FaultKind::Torn { keep_permille: 500 },
        ));
        assert!(matches!(inj.check(IoPoint::PageRead, 0), Injection::Fail(_)));
        assert!(inj.crashed());
    }

    #[test]
    fn transient_fails_once_then_recovers() {
        let inj =
            FaultInjector::armed(FaultPlan::single(IoPoint::WormAppend, 2, FaultKind::Transient));
        assert!(matches!(inj.check(IoPoint::WormAppend, 100), Injection::Proceed));
        match inj.check(IoPoint::WormAppend, 100) {
            Injection::Fail(e) => assert!(e.is_injected()),
            other => panic!("expected fail, got {other:?}"),
        }
        assert!(!inj.crashed());
        assert!(matches!(inj.check(IoPoint::WormAppend, 100), Injection::Proceed));
    }

    #[test]
    fn multiple_faults_fire_independently() {
        let plan = FaultPlan::none().with(IoPoint::PageWrite, 1, FaultKind::Transient).with(
            IoPoint::PageWrite,
            3,
            FaultKind::Crash,
        );
        let inj = FaultInjector::armed(plan);
        assert!(matches!(inj.check(IoPoint::PageWrite, 10), Injection::Fail(_)));
        assert!(matches!(inj.check(IoPoint::PageWrite, 10), Injection::Proceed));
        assert!(matches!(inj.check(IoPoint::PageWrite, 10), Injection::Fail(_)));
        assert!(inj.crashed());
        assert_eq!(inj.fired().len(), 2);
    }

    #[test]
    fn deterministic_replay() {
        // Identical plans + identical call sequences fire identically.
        let run = || {
            let inj =
                FaultInjector::armed(FaultPlan::single(IoPoint::PageRead, 5, FaultKind::Transient));
            let mut outcomes = Vec::new();
            for _ in 0..8 {
                outcomes.push(matches!(inj.check(IoPoint::PageRead, 0), Injection::Proceed));
            }
            outcomes
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn display_names_are_stable() {
        let f = Fault { point: IoPoint::WalFlush, at_count: 7, kind: FaultKind::Crash };
        assert_eq!(f.to_string(), "Crash at wal-flush #7");
    }
}
