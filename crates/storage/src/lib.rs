//! Page-oriented storage: slotted pages, tuple versions, the disk manager,
//! and the buffer pool.
//!
//! This crate is the bottom of the "Berkeley DB substrate" the paper builds
//! on. Its single most important design point is the **`PageStore` seam**:
//! all page traffic between the buffer pool and the disk flows through the
//! [`PageStore`] trait's `pread`/`pwrite`, so the compliance logger can be
//! installed as a decorator "in a manner that involve[s] very few changes to
//! the DBMS core; most of the compliance functionality is isolated in a
//! plugin that is invoked on each pread/pwrite request" (Section IX).
//!
//! Other properties the architecture depends on:
//!
//! * **Page numbers are never reused.** The hash-page-on-read auditor replays
//!   one hash history per PGNO; recycling a PGNO would splice two page
//!   lineages together. The disk manager allocates by extending the file.
//! * **Steal / no-force buffering.** Dirty pages of uncommitted transactions
//!   may reach disk (exercising the paper's UNDO logging path), and commit
//!   does not flush data pages (exercising the WORM-resident WAL-tail story).
//! * **Tuple-order numbers.** Each data page hands out monotonically
//!   increasing per-page sequence numbers; the sequential read hash `Hs`
//!   hashes tuples in this order.

pub mod buffer;
pub mod disk;
pub mod fault;
pub mod page;
pub mod tuple;

pub use buffer::{BufferPool, BufferStats, PageRef};
pub use disk::{DiskManager, PageStore};
pub use fault::{Fault, FaultInjector, FaultKind, FaultPlan, Injection, IoPoint};
pub use page::{Page, PageType, HEADER_SIZE, PAGE_SIZE, PAGE_USABLE};

/// The page-header size (re-exported for layout math in other crates).
pub fn page_header_size() -> usize {
    HEADER_SIZE
}
pub use tuple::{TupleKey, TupleVersion, WriteTime};
