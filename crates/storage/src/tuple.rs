//! Tuple versions: the unit of history in a transaction-time database.
//!
//! Every modification creates a *new physical version*: an `UPDATE` inserts a
//! new version with a fresh start time; a `DELETE` inserts a special
//! **end-of-life** version. Old versions are never overwritten (Section II).
//!
//! Lazy timestamping (Section IV): at write time a version may carry the
//! transaction id instead of the commit time ([`WriteTime::Pending`]); a
//! background stamper later rewrites it in place to [`WriteTime::Committed`].
//! The compliance log's `STAMP_TRANS` records let the auditor resolve pending
//! ids when it replays the log.
//!
//! Two byte encodings matter:
//!
//! * [`TupleVersion::encode_cell`] — the exact on-page representation, also
//!   carried in `NEW_TUPLE` records and hashed (after time normalization) by
//!   the `Hs` read hash;
//! * [`TupleVersion::canonical_bytes`] — the page-independent identity used
//!   by the ADD-HASH completeness check: `(rel, key, commit-time, eol,
//!   value)`. The tuple-order number and PGNO are layout details and are
//!   excluded, so a TSB migration does not change a tuple's identity.

use ccdb_common::{ByteReader, ByteWriter, Error, RelId, Result, Timestamp, TxnId};

/// The time attribute of a stored version.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WriteTime {
    /// Not yet stamped: carries the writing transaction's id.
    Pending(TxnId),
    /// Stamped with the commit time of the creating transaction.
    Committed(Timestamp),
}

impl WriteTime {
    /// The commit time, if stamped.
    pub fn committed(&self) -> Option<Timestamp> {
        match self {
            WriteTime::Committed(t) => Some(*t),
            WriteTime::Pending(_) => None,
        }
    }

    /// The pending transaction id, if unstamped.
    pub fn pending(&self) -> Option<TxnId> {
        match self {
            WriteTime::Pending(t) => Some(*t),
            WriteTime::Committed(_) => None,
        }
    }
}

/// A primary key within a relation (opaque bytes, ordered bytewise).
pub type TupleKey = Vec<u8>;

/// One physical tuple version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TupleVersion {
    /// Owning relation.
    pub rel: RelId,
    /// Primary key bytes.
    pub key: TupleKey,
    /// Start time (possibly still a transaction id).
    pub time: WriteTime,
    /// Tuple-order number within its page (hash-page-on-read refinement).
    pub seq: u16,
    /// End-of-life marker: this version records a deletion.
    pub end_of_life: bool,
    /// The row payload (empty for end-of-life versions).
    pub value: Vec<u8>,
}

const TIME_PENDING: u8 = 0;
const TIME_COMMITTED: u8 = 1;

impl TupleVersion {
    /// Encodes the on-page cell representation.
    pub fn encode_cell(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(24 + self.key.len() + self.value.len());
        w.put_u8(if self.end_of_life { 1 } else { 0 });
        match self.time {
            WriteTime::Pending(txn) => {
                w.put_u8(TIME_PENDING);
                w.put_u64(txn.0);
            }
            WriteTime::Committed(t) => {
                w.put_u8(TIME_COMMITTED);
                w.put_u64(t.0);
            }
        }
        w.put_u16(self.seq);
        w.put_u32(self.rel.0);
        w.put_len_bytes(&self.key);
        w.put_len_bytes(&self.value);
        w.into_vec()
    }

    /// Decodes an on-page cell. Defensive: malformed cells produce
    /// [`Error::Corruption`], never a panic (the auditor feeds this bytes an
    /// adversary controlled).
    pub fn decode_cell(cell: &[u8]) -> Result<TupleVersion> {
        let mut r = ByteReader::new(cell);
        let eol = match r.get_u8()? {
            0 => false,
            1 => true,
            v => return Err(Error::corruption(format!("bad end-of-life flag {v}"))),
        };
        let time = match r.get_u8()? {
            TIME_PENDING => WriteTime::Pending(TxnId(r.get_u64()?)),
            TIME_COMMITTED => WriteTime::Committed(Timestamp(r.get_u64()?)),
            v => return Err(Error::corruption(format!("bad time tag {v}"))),
        };
        let seq = r.get_u16()?;
        let rel = RelId(r.get_u32()?);
        let key = r.get_len_bytes()?.to_vec();
        let value = r.get_len_bytes()?.to_vec();
        if !r.is_exhausted() {
            return Err(Error::corruption("trailing bytes after tuple version"));
        }
        Ok(TupleVersion { rel, key, time, seq, end_of_life: eol, value })
    }

    /// The page-independent identity bytes hashed by the completeness check.
    /// Requires a stamped time: the auditor resolves pending ids via
    /// `STAMP_TRANS` before hashing; calling this on a pending version is a
    /// caller bug.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let t = match self.time {
            WriteTime::Committed(t) => t,
            WriteTime::Pending(txn) => {
                panic!(
                    "canonical_bytes on unstamped version of {txn}; resolve via STAMP_TRANS first"
                )
            }
        };
        self.canonical_bytes_with_time(t)
    }

    /// Identity bytes with an explicitly resolved commit time.
    pub fn canonical_bytes_with_time(&self, commit: Timestamp) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(24 + self.key.len() + self.value.len());
        w.put_u32(self.rel.0);
        w.put_len_bytes(&self.key);
        w.put_u64(commit.0);
        w.put_u8(if self.end_of_life { 1 } else { 0 });
        w.put_len_bytes(&self.value);
        w.into_vec()
    }

    /// A stable identity for duplicate detection during audit (recovery can
    /// duplicate `NEW_TUPLE` records): identity excludes the stored time
    /// *representation* (pending vs stamped) by keying on the writing
    /// transaction where known.
    pub fn dedup_key(&self) -> (RelId, TupleKey, u16, bool) {
        (self.rel, self.key.clone(), self.seq, self.end_of_life)
    }

    /// Returns a copy stamped with `commit`.
    pub fn stamped(&self, commit: Timestamp) -> TupleVersion {
        TupleVersion { time: WriteTime::Committed(commit), ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v() -> TupleVersion {
        TupleVersion {
            rel: RelId(4),
            key: b"cust-001".to_vec(),
            time: WriteTime::Committed(Timestamp(1_000)),
            seq: 3,
            end_of_life: false,
            value: b"row-payload".to_vec(),
        }
    }

    #[test]
    fn cell_roundtrip() {
        let t = v();
        let cell = t.encode_cell();
        assert_eq!(TupleVersion::decode_cell(&cell).unwrap(), t);
    }

    #[test]
    fn pending_roundtrip() {
        let t = TupleVersion { time: WriteTime::Pending(TxnId(42)), ..v() };
        let cell = t.encode_cell();
        let back = TupleVersion::decode_cell(&cell).unwrap();
        assert_eq!(back.time, WriteTime::Pending(TxnId(42)));
    }

    #[test]
    fn eol_roundtrip() {
        let t = TupleVersion { end_of_life: true, value: vec![], ..v() };
        let cell = t.encode_cell();
        let back = TupleVersion::decode_cell(&cell).unwrap();
        assert!(back.end_of_life);
        assert!(back.value.is_empty());
    }

    #[test]
    fn canonical_excludes_seq() {
        let a = v();
        let b = TupleVersion { seq: 99, ..v() };
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        assert_ne!(a.encode_cell(), b.encode_cell());
    }

    #[test]
    fn canonical_distinguishes_time_value_eol() {
        let base = v();
        let t2 = TupleVersion { time: WriteTime::Committed(Timestamp(2_000)), ..v() };
        let v2 = TupleVersion { value: b"other".to_vec(), ..v() };
        let e2 = TupleVersion { end_of_life: true, ..v() };
        assert_ne!(base.canonical_bytes(), t2.canonical_bytes());
        assert_ne!(base.canonical_bytes(), v2.canonical_bytes());
        assert_ne!(base.canonical_bytes(), e2.canonical_bytes());
    }

    #[test]
    #[should_panic(expected = "unstamped")]
    fn canonical_on_pending_panics() {
        let t = TupleVersion { time: WriteTime::Pending(TxnId(1)), ..v() };
        let _ = t.canonical_bytes();
    }

    #[test]
    fn canonical_with_time_matches_stamped() {
        let t = TupleVersion { time: WriteTime::Pending(TxnId(1)), ..v() };
        let s = t.stamped(Timestamp(500));
        assert_eq!(t.canonical_bytes_with_time(Timestamp(500)), s.canonical_bytes());
    }

    #[test]
    fn malformed_cells_rejected() {
        assert!(TupleVersion::decode_cell(&[]).is_err());
        assert!(TupleVersion::decode_cell(&[9]).is_err());
        let mut good = v().encode_cell();
        good.push(0); // trailing byte
        assert!(TupleVersion::decode_cell(&good).is_err());
    }

    #[test]
    fn write_time_accessors() {
        assert_eq!(WriteTime::Committed(Timestamp(5)).committed(), Some(Timestamp(5)));
        assert_eq!(WriteTime::Committed(Timestamp(5)).pending(), None);
        assert_eq!(WriteTime::Pending(TxnId(5)).pending(), Some(TxnId(5)));
        assert_eq!(WriteTime::Pending(TxnId(5)).committed(), None);
    }
}
