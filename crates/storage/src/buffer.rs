//! The buffer pool: sharded CLOCK eviction, steal/no-force, regret-interval
//! sweeps.
//!
//! Policy choices are dictated by the paper's setting:
//!
//! * **Steal**: "most commercial DBMSs allow the buffer manager to steal page
//!   frames from uncommitted transactions that may subsequently abort" —
//!   eviction writes dirty pages regardless of transaction state, which is
//!   what makes the compliance logger's `UNDO` records necessary.
//! * **No-force**: commit does not flush data pages; a crash inside the
//!   regret interval therefore leaves committed tuples only in the WAL tail,
//!   which is why that tail must live on WORM.
//! * **Regret-interval sweep**: [`BufferPool::flush_dirtied_before`] forces
//!   every page dirty since a cutoff to disk, which (through the compliance
//!   plugin on the `pwrite` path) forces the corresponding `NEW_TUPLE`
//!   records to WORM within one regret interval of commit.
//!
//! Before any dirty page is written, an optional **write barrier** runs —
//! the engine installs the WAL rule there (flush log up to the page LSN);
//! the compliance plugin independently enforces "data page writes wait until
//! their NEW_TUPLE records have reached the WORM server" inside its
//! `PageStore` decorator.
//!
//! # Concurrency
//!
//! The frame table is **sharded by page number** (`pgno % nshards`, with
//! `nshards = min(16, capacity)`): each shard owns a disjoint slice of the
//! capacity and runs its own CLOCK hand, so fetches of pages in different
//! shards never contend. Statistics are lock-free atomics readable without
//! touching any shard lock. In the system-wide lock hierarchy a shard lock
//! ranks *below* tree and engine locks and *above* the page latch and the
//! WAL writer (the write barrier may flush the WAL while a shard lock and a
//! victim's page latch are held; the victim is guaranteed unpinned, so no
//! other thread can hold its latch).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ccdb_common::sync::{Mutex, RwLock};
use ccdb_common::{ClockRef, PageNo, RelId, Result, Timestamp};

use crate::disk::PageStore;
use crate::page::{Page, PageType};

/// Shared handle to a buffered page.
pub type PageRef = Arc<RwLock<Page>>;

/// Counters for the experiment harness (a point-in-time snapshot of the
/// pool's lock-free atomic counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Fetches served from memory.
    pub hits: u64,
    /// Fetches requiring a pread.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty-page writes issued (evictions + flush calls).
    pub flushes: u64,
}

impl BufferStats {
    /// Fraction of fetches served from memory (0.0 when no fetches yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Lock-free counters updated on the fetch/evict/flush paths and snapshotted
/// by [`BufferPool::stats`] without taking any shard lock.
#[derive(Debug, Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    flushes: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> BufferStats {
        BufferStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }
}

/// A barrier invoked with the page about to be written (WAL rule hook).
pub type WriteBarrier = Arc<dyn Fn(&Page) -> Result<()> + Send + Sync>;

/// One shard of the frame table: a disjoint slice of the pool's capacity
/// with its own CLOCK hand.
struct Shard {
    frames: HashMap<PageNo, PageRef>,
    ref_bit: HashMap<PageNo, bool>,
    clock_ring: Vec<PageNo>,
    hand: usize,
    /// This shard's share of the pool capacity (≥ 1).
    cap: usize,
}

/// The buffer pool.
pub struct BufferPool {
    store: Arc<dyn PageStore>,
    clock: ClockRef,
    capacity: usize,
    barrier: RwLock<Option<WriteBarrier>>,
    shards: Vec<Mutex<Shard>>,
    stats: AtomicStats,
}

/// Upper bound on the number of frame-table shards.
const MAX_SHARDS: usize = 16;

impl BufferPool {
    /// Creates a pool of `capacity` page frames over `store`.
    pub fn new(store: Arc<dyn PageStore>, clock: ClockRef, capacity: usize) -> BufferPool {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        let nshards = capacity.clamp(1, MAX_SHARDS);
        let base = capacity / nshards;
        let extra = capacity % nshards;
        let shards = (0..nshards)
            .map(|i| {
                Mutex::new(Shard {
                    frames: HashMap::new(),
                    ref_bit: HashMap::new(),
                    clock_ring: Vec::new(),
                    hand: 0,
                    cap: base + usize::from(i < extra),
                })
            })
            .collect();
        BufferPool {
            store,
            clock,
            capacity,
            barrier: RwLock::new(None),
            shards,
            stats: AtomicStats::default(),
        }
    }

    fn shard_for(&self, pgno: PageNo) -> &Mutex<Shard> {
        &self.shards[(pgno.0 as usize) % self.shards.len()]
    }

    /// Installs the pre-write barrier (the engine's WAL-before-data rule).
    pub fn set_write_barrier(&self, b: WriteBarrier) {
        *self.barrier.write() = Some(b);
    }

    /// The underlying store (the compliance plugin, when installed).
    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.store
    }

    /// Current statistics (lock-free snapshot; no shard lock taken).
    pub fn stats(&self) -> BufferStats {
        self.stats.snapshot()
    }

    /// Pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of frame-table shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn write_out(&self, page: &mut Page) -> Result<()> {
        if let Some(b) = self.barrier.read().clone() {
            b(page)?;
        }
        self.store.pwrite(page)?;
        page.dirty = false;
        Ok(())
    }

    /// Evicts one unreferenced frame from `shard`, writing it first if
    /// dirty. Returns `true` if a frame was evicted; `false` if every frame
    /// is pinned (the shard then over-commits rather than deadlocking).
    fn evict_one(&self, shard: &mut Shard) -> Result<bool> {
        let n = shard.clock_ring.len();
        // Two full sweeps: the first clears reference bits, the second takes
        // the first unreferenced, unpinned victim.
        for _ in 0..2 * n {
            if shard.clock_ring.is_empty() {
                return Ok(false);
            }
            shard.hand %= shard.clock_ring.len();
            let pgno = shard.clock_ring[shard.hand];
            let referenced = shard.ref_bit.get(&pgno).copied().unwrap_or(false);
            let pinned = {
                let frame = &shard.frames[&pgno];
                Arc::strong_count(frame) > 1
            };
            if referenced {
                shard.ref_bit.insert(pgno, false);
                shard.hand += 1;
                continue;
            }
            if pinned {
                shard.hand += 1;
                continue;
            }
            // Victim found. No other thread can hold its latch: it is
            // unpinned (sole Arc reference is the shard's) and admission to
            // this shard requires the shard lock we hold.
            let frame = shard.frames.remove(&pgno).expect("frame present");
            shard.ref_bit.remove(&pgno);
            shard.clock_ring.remove(shard.hand);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            let mut page = frame.write();
            if page.dirty {
                self.stats.flushes.fetch_add(1, Ordering::Relaxed);
                self.write_out(&mut page)?;
            }
            return Ok(true);
        }
        Ok(false)
    }

    fn admit(&self, shard: &mut Shard, pgno: PageNo, page: Page) -> Result<PageRef> {
        while shard.frames.len() >= shard.cap {
            if !self.evict_one(shard)? {
                break; // everything pinned: over-commit
            }
        }
        let frame: PageRef = Arc::new(RwLock::new(page));
        shard.frames.insert(pgno, frame.clone());
        shard.ref_bit.insert(pgno, true);
        shard.clock_ring.push(pgno);
        Ok(frame)
    }

    /// Fetches a page, reading it from the store on a miss.
    pub fn fetch(&self, pgno: PageNo) -> Result<PageRef> {
        let mut shard = self.shard_for(pgno).lock();
        if let Some(f) = shard.frames.get(&pgno) {
            let f = f.clone();
            shard.ref_bit.insert(pgno, true);
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(f);
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        // Read under the shard lock so two threads missing on the same page
        // cannot admit duplicate frames; other shards proceed unimpeded.
        let page = self.store.pread(pgno)?;
        self.admit(&mut shard, pgno, page)
    }

    /// Allocates and buffers a brand-new page, already formatted and dirty.
    pub fn new_page(&self, ptype: PageType, rel: RelId) -> Result<(PageNo, PageRef)> {
        let pgno = self.store.allocate()?;
        let mut page = Page::new(pgno, ptype, rel);
        page.dirty = true;
        page.dirtied_at = self.clock.now();
        let mut shard = self.shard_for(pgno).lock();
        let frame = self.admit(&mut shard, pgno, page)?;
        Ok((pgno, frame))
    }

    /// Marks a page dirty, stamping the first-dirtied time used by the
    /// regret-interval sweep. Call with the page's write lock held.
    pub fn mark_dirty(&self, page: &mut Page) {
        if !page.dirty {
            page.dirty = true;
            page.dirtied_at = self.clock.now();
        }
    }

    /// Flushes one page if buffered and dirty.
    pub fn flush_page(&self, pgno: PageNo) -> Result<()> {
        let frame = {
            let shard = self.shard_for(pgno).lock();
            shard.frames.get(&pgno).cloned()
        };
        if let Some(frame) = frame {
            let mut page = frame.write();
            if page.dirty {
                self.stats.flushes.fetch_add(1, Ordering::Relaxed);
                self.write_out(&mut page)?;
            }
        }
        Ok(())
    }

    /// Flushes every dirty page. Used at checkpoints and quiescent audits.
    pub fn flush_all(&self) -> Result<()> {
        for pgno in self.buffered_pages() {
            self.flush_page(pgno)?;
        }
        self.store.sync()
    }

    /// Flushes every page that became dirty at or before `cutoff` — the
    /// regret-interval sweep: a page dirtied in interval *k* reaches disk
    /// (and thus its NEW_TUPLE records reach WORM) during interval *k+1*.
    pub fn flush_dirtied_before(&self, cutoff: Timestamp) -> Result<usize> {
        let mut flushed = 0;
        for pgno in self.buffered_pages() {
            let frame = {
                let shard = self.shard_for(pgno).lock();
                shard.frames.get(&pgno).cloned()
            };
            if let Some(frame) = frame {
                let mut page = frame.write();
                if page.dirty && page.dirtied_at <= cutoff {
                    self.stats.flushes.fetch_add(1, Ordering::Relaxed);
                    self.write_out(&mut page)?;
                    flushed += 1;
                }
            }
        }
        Ok(flushed)
    }

    /// Installs (or replaces) a page image in the pool, marked dirty — the
    /// redo path of crash recovery, where a WAL `SetImage` must take effect
    /// even when the on-disk page is unreadable (it was allocated but never
    /// written before the crash).
    pub fn overwrite(&self, pgno: PageNo, mut page: Page) -> Result<PageRef> {
        page.dirty = true;
        page.dirtied_at = self.clock.now();
        let mut shard = self.shard_for(pgno).lock();
        if let Some(existing) = shard.frames.get(&pgno) {
            let existing = existing.clone();
            *existing.write() = page;
            shard.ref_bit.insert(pgno, true);
            return Ok(existing);
        }
        self.admit(&mut shard, pgno, page)
    }

    /// Page numbers currently buffered.
    pub fn buffered_pages(&self) -> Vec<PageNo> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().frames.keys().copied());
        }
        out
    }

    /// Page numbers of dirty buffered pages.
    pub fn dirty_pages(&self) -> Vec<PageNo> {
        let mut out = Vec::new();
        for s in &self.shards {
            let shard = s.lock();
            out.extend(shard.frames.iter().filter(|(_, f)| f.read().dirty).map(|(p, _)| *p));
        }
        out
    }

    /// Discards all buffered pages *without writing them* — the crash
    /// simulation. Pinned frames are discarded too (a crash does not wait).
    pub fn drop_all_without_flush(&self) {
        for s in &self.shards {
            let mut shard = s.lock();
            shard.frames.clear();
            shard.ref_bit.clear();
            shard.clock_ring.clear();
            shard.hand = 0;
        }
    }

    /// Drops a single clean page from the pool (used after WORM migration:
    /// the live copy is superseded).
    pub fn discard(&self, pgno: PageNo) {
        let mut shard = self.shard_for(pgno).lock();
        shard.frames.remove(&pgno);
        shard.ref_bit.remove(&pgno);
        shard.clock_ring.retain(|p| *p != pgno);
        shard.hand = 0;
    }
}

impl core::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let resident: usize = self.shards.iter().map(|s| s.lock().frames.len()).sum();
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("resident", &resident)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_common::{Clock, Duration, Error, VirtualClock};
    use std::path::PathBuf;

    struct TempFile(PathBuf);
    impl TempFile {
        fn new(tag: &str) -> TempFile {
            TempFile(std::env::temp_dir().join(format!(
                "ccdb-buf-{}-{}-{}.db",
                std::process::id(),
                tag,
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            )))
        }
    }
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn pool(tag: &str, cap: usize) -> (BufferPool, Arc<VirtualClock>, TempFile) {
        let tf = TempFile::new(tag);
        let dm = Arc::new(crate::disk::DiskManager::open(&tf.0).unwrap());
        let clock = Arc::new(VirtualClock::new());
        (BufferPool::new(dm, clock.clone(), cap), clock, tf)
    }

    #[test]
    fn new_page_then_fetch_hits() {
        let (bp, _, _tf) = pool("hit", 4);
        let (pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        frame.write().append_cell(b"x").unwrap();
        drop(frame);
        let again = bp.fetch(pgno).unwrap();
        assert_eq!(again.read().cell(0), b"x");
        let st = bp.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 0);
    }

    #[test]
    fn eviction_writes_dirty_pages_steal() {
        let (bp, _, _tf) = pool("steal", 2);
        let mut pgnos = Vec::new();
        for i in 0..4 {
            let (pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
            frame.write().append_cell(format!("cell{i}").as_bytes()).unwrap();
            pgnos.push(pgno);
        }
        // Capacity 2, so at least 2 evictions (each a steal write).
        let st = bp.stats();
        assert!(st.evictions >= 2, "evictions: {}", st.evictions);
        // Everything is still readable (from disk on miss).
        for (i, pgno) in pgnos.iter().enumerate() {
            let f = bp.fetch(*pgno).unwrap();
            assert_eq!(f.read().cell(0), format!("cell{i}").as_bytes());
        }
    }

    #[test]
    fn pinned_pages_not_evicted() {
        let (bp, _, _tf) = pool("pin", 2);
        let (pgno_a, frame_a) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        frame_a.write().append_cell(b"pinned").unwrap();
        // Fill past capacity while holding frame_a.
        for _ in 0..4 {
            bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        }
        // frame_a must still be the same object in the pool.
        let again = bp.fetch(pgno_a).unwrap();
        assert!(Arc::ptr_eq(&frame_a, &again));
        assert_eq!(again.read().cell(0), b"pinned");
    }

    #[test]
    fn shard_caps_sum_to_capacity() {
        for cap in [1usize, 2, 3, 15, 16, 17, 100, 512] {
            let (bp, _, _tf) = pool(&format!("caps{cap}"), cap);
            assert_eq!(bp.shard_count(), cap.min(16));
            let total: usize = bp.shards.iter().map(|s| s.lock().cap).sum();
            assert_eq!(total, cap, "shard caps must partition capacity {cap}");
            assert!(bp.shards.iter().all(|s| s.lock().cap >= 1));
        }
    }

    #[test]
    fn stats_readable_without_shard_locks() {
        // Holding every shard lock must not block the stats snapshot.
        let (bp, _, _tf) = pool("lockfree", 4);
        let (_pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        drop(frame);
        let guards: Vec<_> = bp.shards.iter().map(|s| s.lock()).collect();
        let st = bp.stats(); // would deadlock if stats took a shard lock
        assert_eq!(st.misses, 0);
        drop(guards);
    }

    #[test]
    fn hit_rate_computation() {
        assert_eq!(BufferStats::default().hit_rate(), 0.0);
        let st = BufferStats { hits: 3, misses: 1, evictions: 0, flushes: 0 };
        assert!((st.hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn concurrent_fetch_different_shards() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (bp, _, _tf) = pool("conc", 64);
        let bp = Arc::new(bp);
        let mut pgnos = Vec::new();
        for i in 0..32u32 {
            let (pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
            frame.write().append_cell(format!("v{i}").as_bytes()).unwrap();
            pgnos.push(pgno);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..4 {
            let bp = bp.clone();
            let pgnos = pgnos.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let pgno = pgnos[i % pgnos.len()];
                    let f = bp.fetch(pgno).unwrap();
                    assert!(f.read().cell_count() > 0);
                    i += 1;
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert!(bp.stats().hits > 0);
    }

    #[test]
    fn flush_dirtied_before_honors_cutoff() {
        let (bp, clock, _tf) = pool("sweep", 8);
        let (pg_old, f_old) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        f_old.write().append_cell(b"old").unwrap();
        drop(f_old);
        clock.advance(Duration::from_mins(5));
        let cutoff = Timestamp(clock.now().0 - Duration::from_mins(1).0);
        let (pg_new, f_new) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        f_new.write().append_cell(b"new").unwrap();
        drop(f_new);
        let flushed = bp.flush_dirtied_before(cutoff).unwrap();
        assert_eq!(flushed, 1);
        let dirty = bp.dirty_pages();
        assert!(dirty.contains(&pg_new));
        assert!(!dirty.contains(&pg_old));
    }

    #[test]
    fn write_barrier_runs_before_pwrite() {
        let (bp, _, _tf) = pool("barrier", 4);
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let hits2 = hits.clone();
        bp.set_write_barrier(Arc::new(move |_p: &Page| {
            hits2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(())
        }));
        let (pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        frame.write().append_cell(b"x").unwrap();
        drop(frame);
        bp.flush_page(pgno).unwrap();
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
        // Clean page: no second write.
        bp.flush_page(pgno).unwrap();
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn failing_barrier_blocks_write() {
        let (bp, _, _tf) = pool("barrier-fail", 4);
        bp.set_write_barrier(Arc::new(|_p: &Page| {
            Err(Error::ComplianceHalt("WORM unreachable".into()))
        }));
        let (pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        frame.write().append_cell(b"x").unwrap();
        drop(frame);
        assert!(bp.flush_page(pgno).is_err());
        assert!(frame_is_dirty(&bp, pgno));
    }

    fn frame_is_dirty(bp: &BufferPool, pgno: PageNo) -> bool {
        bp.dirty_pages().contains(&pgno)
    }

    #[test]
    fn crash_drop_loses_unflushed_data() {
        let (bp, _, tf) = pool("crash", 4);
        let (pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        frame.write().append_cell(b"volatile").unwrap();
        drop(frame);
        bp.drop_all_without_flush();
        // The page slot exists on disk but holds zeroes (never written).
        assert!(bp.fetch(pgno).is_err());
        drop(bp);
        drop(tf);
    }

    #[test]
    fn mark_dirty_stamps_first_dirty_time_only() {
        let (bp, clock, _tf) = pool("mark", 4);
        let (_pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        {
            let mut p = frame.write();
            p.dirty = false; // pretend it was flushed
        }
        clock.advance_to(Timestamp(100));
        {
            let mut p = frame.write();
            bp.mark_dirty(&mut p);
            assert_eq!(p.dirtied_at, Timestamp(100));
        }
        clock.advance_to(Timestamp(200));
        {
            let mut p = frame.write();
            bp.mark_dirty(&mut p); // already dirty: timestamp unchanged
            assert_eq!(p.dirtied_at, Timestamp(100));
        }
    }
}
