//! The buffer pool: CLOCK eviction, steal/no-force, regret-interval sweeps.
//!
//! Policy choices are dictated by the paper's setting:
//!
//! * **Steal**: "most commercial DBMSs allow the buffer manager to steal page
//!   frames from uncommitted transactions that may subsequently abort" —
//!   eviction writes dirty pages regardless of transaction state, which is
//!   what makes the compliance logger's `UNDO` records necessary.
//! * **No-force**: commit does not flush data pages; a crash inside the
//!   regret interval therefore leaves committed tuples only in the WAL tail,
//!   which is why that tail must live on WORM.
//! * **Regret-interval sweep**: [`BufferPool::flush_dirtied_before`] forces
//!   every page dirty since a cutoff to disk, which (through the compliance
//!   plugin on the `pwrite` path) forces the corresponding `NEW_TUPLE`
//!   records to WORM within one regret interval of commit.
//!
//! Before any dirty page is written, an optional **write barrier** runs —
//! the engine installs the WAL rule there (flush log up to the page LSN);
//! the compliance plugin independently enforces "data page writes wait until
//! their NEW_TUPLE records have reached the WORM server" inside its
//! `PageStore` decorator.

use std::collections::HashMap;
use std::sync::Arc;

use ccdb_common::sync::{Mutex, RwLock};
use ccdb_common::{ClockRef, PageNo, RelId, Result, Timestamp};

use crate::disk::PageStore;
use crate::page::{Page, PageType};

/// Shared handle to a buffered page.
pub type PageRef = Arc<RwLock<Page>>;

/// Counters for the experiment harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Fetches served from memory.
    pub hits: u64,
    /// Fetches requiring a pread.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty-page writes issued (evictions + flush calls).
    pub flushes: u64,
}

/// A barrier invoked with the page about to be written (WAL rule hook).
pub type WriteBarrier = Arc<dyn Fn(&Page) -> Result<()> + Send + Sync>;

struct Inner {
    frames: HashMap<PageNo, PageRef>,
    ref_bit: HashMap<PageNo, bool>,
    clock_ring: Vec<PageNo>,
    hand: usize,
    stats: BufferStats,
}

/// The buffer pool.
pub struct BufferPool {
    store: Arc<dyn PageStore>,
    clock: ClockRef,
    capacity: usize,
    barrier: Mutex<Option<WriteBarrier>>,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Creates a pool of `capacity` page frames over `store`.
    pub fn new(store: Arc<dyn PageStore>, clock: ClockRef, capacity: usize) -> BufferPool {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            store,
            clock,
            capacity,
            barrier: Mutex::new(None),
            inner: Mutex::new(Inner {
                frames: HashMap::new(),
                ref_bit: HashMap::new(),
                clock_ring: Vec::new(),
                hand: 0,
                stats: BufferStats::default(),
            }),
        }
    }

    /// Installs the pre-write barrier (the engine's WAL-before-data rule).
    pub fn set_write_barrier(&self, b: WriteBarrier) {
        *self.barrier.lock() = Some(b);
    }

    /// The underlying store (the compliance plugin, when installed).
    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.store
    }

    /// Current statistics.
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().stats
    }

    /// Pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn write_out(&self, page: &mut Page) -> Result<()> {
        if let Some(b) = self.barrier.lock().clone() {
            b(page)?;
        }
        self.store.pwrite(page)?;
        page.dirty = false;
        Ok(())
    }

    /// Evicts one unreferenced frame, writing it first if dirty. Returns
    /// `true` if a frame was evicted; `false` if every frame is pinned (the
    /// pool then over-commits rather than deadlocking).
    fn evict_one(&self, inner: &mut Inner) -> Result<bool> {
        let n = inner.clock_ring.len();
        // Two full sweeps: the first clears reference bits, the second takes
        // the first unreferenced, unpinned victim.
        for _ in 0..2 * n {
            if inner.clock_ring.is_empty() {
                return Ok(false);
            }
            inner.hand %= inner.clock_ring.len();
            let pgno = inner.clock_ring[inner.hand];
            let referenced = inner.ref_bit.get(&pgno).copied().unwrap_or(false);
            let pinned = {
                let frame = &inner.frames[&pgno];
                Arc::strong_count(frame) > 1
            };
            if referenced {
                inner.ref_bit.insert(pgno, false);
                inner.hand += 1;
                continue;
            }
            if pinned {
                inner.hand += 1;
                continue;
            }
            // Victim found.
            let frame = inner.frames.remove(&pgno).expect("frame present");
            inner.ref_bit.remove(&pgno);
            inner.clock_ring.remove(inner.hand);
            inner.stats.evictions += 1;
            let mut page = frame.write();
            if page.dirty {
                inner.stats.flushes += 1;
                self.write_out(&mut page)?;
            }
            return Ok(true);
        }
        Ok(false)
    }

    fn admit(&self, inner: &mut Inner, pgno: PageNo, page: Page) -> Result<PageRef> {
        while inner.frames.len() >= self.capacity {
            if !self.evict_one(inner)? {
                break; // everything pinned: over-commit
            }
        }
        let frame: PageRef = Arc::new(RwLock::new(page));
        inner.frames.insert(pgno, frame.clone());
        inner.ref_bit.insert(pgno, true);
        inner.clock_ring.push(pgno);
        Ok(frame)
    }

    /// Fetches a page, reading it from the store on a miss.
    pub fn fetch(&self, pgno: PageNo) -> Result<PageRef> {
        let mut inner = self.inner.lock();
        if let Some(f) = inner.frames.get(&pgno) {
            let f = f.clone();
            inner.ref_bit.insert(pgno, true);
            inner.stats.hits += 1;
            return Ok(f);
        }
        inner.stats.misses += 1;
        // Read outside the map borrow (but under the pool lock: the pool is a
        // single-writer structure and the store is fast in simulation).
        let page = self.store.pread(pgno)?;
        self.admit(&mut inner, pgno, page)
    }

    /// Allocates and buffers a brand-new page, already formatted and dirty.
    pub fn new_page(&self, ptype: PageType, rel: RelId) -> Result<(PageNo, PageRef)> {
        let pgno = self.store.allocate()?;
        let mut page = Page::new(pgno, ptype, rel);
        page.dirty = true;
        page.dirtied_at = self.clock.now();
        let mut inner = self.inner.lock();
        let frame = self.admit(&mut inner, pgno, page)?;
        Ok((pgno, frame))
    }

    /// Marks a page dirty, stamping the first-dirtied time used by the
    /// regret-interval sweep. Call with the page's write lock held.
    pub fn mark_dirty(&self, page: &mut Page) {
        if !page.dirty {
            page.dirty = true;
            page.dirtied_at = self.clock.now();
        }
    }

    /// Flushes one page if buffered and dirty.
    pub fn flush_page(&self, pgno: PageNo) -> Result<()> {
        let frame = {
            let inner = self.inner.lock();
            inner.frames.get(&pgno).cloned()
        };
        if let Some(frame) = frame {
            let mut page = frame.write();
            if page.dirty {
                self.inner.lock().stats.flushes += 1;
                self.write_out(&mut page)?;
            }
        }
        Ok(())
    }

    /// Flushes every dirty page. Used at checkpoints and quiescent audits.
    pub fn flush_all(&self) -> Result<()> {
        for pgno in self.buffered_pages() {
            self.flush_page(pgno)?;
        }
        self.store.sync()
    }

    /// Flushes every page that became dirty at or before `cutoff` — the
    /// regret-interval sweep: a page dirtied in interval *k* reaches disk
    /// (and thus its NEW_TUPLE records reach WORM) during interval *k+1*.
    pub fn flush_dirtied_before(&self, cutoff: Timestamp) -> Result<usize> {
        let mut flushed = 0;
        for pgno in self.buffered_pages() {
            let frame = {
                let inner = self.inner.lock();
                inner.frames.get(&pgno).cloned()
            };
            if let Some(frame) = frame {
                let mut page = frame.write();
                if page.dirty && page.dirtied_at <= cutoff {
                    self.inner.lock().stats.flushes += 1;
                    self.write_out(&mut page)?;
                    flushed += 1;
                }
            }
        }
        Ok(flushed)
    }

    /// Installs (or replaces) a page image in the pool, marked dirty — the
    /// redo path of crash recovery, where a WAL `SetImage` must take effect
    /// even when the on-disk page is unreadable (it was allocated but never
    /// written before the crash).
    pub fn overwrite(&self, pgno: PageNo, mut page: Page) -> Result<PageRef> {
        page.dirty = true;
        page.dirtied_at = self.clock.now();
        let mut inner = self.inner.lock();
        if let Some(existing) = inner.frames.get(&pgno) {
            let existing = existing.clone();
            *existing.write() = page;
            inner.ref_bit.insert(pgno, true);
            return Ok(existing);
        }
        self.admit(&mut inner, pgno, page)
    }

    /// Page numbers currently buffered.
    pub fn buffered_pages(&self) -> Vec<PageNo> {
        self.inner.lock().frames.keys().copied().collect()
    }

    /// Page numbers of dirty buffered pages.
    pub fn dirty_pages(&self) -> Vec<PageNo> {
        let inner = self.inner.lock();
        inner.frames.iter().filter(|(_, f)| f.read().dirty).map(|(p, _)| *p).collect()
    }

    /// Discards all buffered pages *without writing them* — the crash
    /// simulation. Pinned frames are discarded too (a crash does not wait).
    pub fn drop_all_without_flush(&self) {
        let mut inner = self.inner.lock();
        inner.frames.clear();
        inner.ref_bit.clear();
        inner.clock_ring.clear();
        inner.hand = 0;
    }

    /// Drops a single clean page from the pool (used after WORM migration:
    /// the live copy is superseded).
    pub fn discard(&self, pgno: PageNo) {
        let mut inner = self.inner.lock();
        inner.frames.remove(&pgno);
        inner.ref_bit.remove(&pgno);
        inner.clock_ring.retain(|p| *p != pgno);
        inner.hand = 0;
    }
}

impl core::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident", &inner.frames.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_common::{Clock, Duration, Error, VirtualClock};
    use std::path::PathBuf;

    struct TempFile(PathBuf);
    impl TempFile {
        fn new(tag: &str) -> TempFile {
            TempFile(std::env::temp_dir().join(format!(
                "ccdb-buf-{}-{}-{}.db",
                std::process::id(),
                tag,
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            )))
        }
    }
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn pool(tag: &str, cap: usize) -> (BufferPool, Arc<VirtualClock>, TempFile) {
        let tf = TempFile::new(tag);
        let dm = Arc::new(crate::disk::DiskManager::open(&tf.0).unwrap());
        let clock = Arc::new(VirtualClock::new());
        (BufferPool::new(dm, clock.clone(), cap), clock, tf)
    }

    #[test]
    fn new_page_then_fetch_hits() {
        let (bp, _, _tf) = pool("hit", 4);
        let (pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        frame.write().append_cell(b"x").unwrap();
        drop(frame);
        let again = bp.fetch(pgno).unwrap();
        assert_eq!(again.read().cell(0), b"x");
        let st = bp.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 0);
    }

    #[test]
    fn eviction_writes_dirty_pages_steal() {
        let (bp, _, _tf) = pool("steal", 2);
        let mut pgnos = Vec::new();
        for i in 0..4 {
            let (pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
            frame.write().append_cell(format!("cell{i}").as_bytes()).unwrap();
            pgnos.push(pgno);
        }
        // Capacity 2, so at least 2 evictions (each a steal write).
        let st = bp.stats();
        assert!(st.evictions >= 2, "evictions: {}", st.evictions);
        // Everything is still readable (from disk on miss).
        for (i, pgno) in pgnos.iter().enumerate() {
            let f = bp.fetch(*pgno).unwrap();
            assert_eq!(f.read().cell(0), format!("cell{i}").as_bytes());
        }
    }

    #[test]
    fn pinned_pages_not_evicted() {
        let (bp, _, _tf) = pool("pin", 2);
        let (pgno_a, frame_a) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        frame_a.write().append_cell(b"pinned").unwrap();
        // Fill past capacity while holding frame_a.
        for _ in 0..4 {
            bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        }
        // frame_a must still be the same object in the pool.
        let again = bp.fetch(pgno_a).unwrap();
        assert!(Arc::ptr_eq(&frame_a, &again));
        assert_eq!(again.read().cell(0), b"pinned");
    }

    #[test]
    fn flush_dirtied_before_honors_cutoff() {
        let (bp, clock, _tf) = pool("sweep", 8);
        let (pg_old, f_old) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        f_old.write().append_cell(b"old").unwrap();
        drop(f_old);
        clock.advance(Duration::from_mins(5));
        let cutoff = Timestamp(clock.now().0 - Duration::from_mins(1).0);
        let (pg_new, f_new) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        f_new.write().append_cell(b"new").unwrap();
        drop(f_new);
        let flushed = bp.flush_dirtied_before(cutoff).unwrap();
        assert_eq!(flushed, 1);
        let dirty = bp.dirty_pages();
        assert!(dirty.contains(&pg_new));
        assert!(!dirty.contains(&pg_old));
    }

    #[test]
    fn write_barrier_runs_before_pwrite() {
        let (bp, _, _tf) = pool("barrier", 4);
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let hits2 = hits.clone();
        bp.set_write_barrier(Arc::new(move |_p: &Page| {
            hits2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(())
        }));
        let (pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        frame.write().append_cell(b"x").unwrap();
        drop(frame);
        bp.flush_page(pgno).unwrap();
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
        // Clean page: no second write.
        bp.flush_page(pgno).unwrap();
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn failing_barrier_blocks_write() {
        let (bp, _, _tf) = pool("barrier-fail", 4);
        bp.set_write_barrier(Arc::new(|_p: &Page| {
            Err(Error::ComplianceHalt("WORM unreachable".into()))
        }));
        let (pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        frame.write().append_cell(b"x").unwrap();
        drop(frame);
        assert!(bp.flush_page(pgno).is_err());
        assert!(frame_is_dirty(&bp, pgno));
    }

    fn frame_is_dirty(bp: &BufferPool, pgno: PageNo) -> bool {
        bp.dirty_pages().contains(&pgno)
    }

    #[test]
    fn crash_drop_loses_unflushed_data() {
        let (bp, _, tf) = pool("crash", 4);
        let (pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        frame.write().append_cell(b"volatile").unwrap();
        drop(frame);
        bp.drop_all_without_flush();
        // The page slot exists on disk but holds zeroes (never written).
        assert!(bp.fetch(pgno).is_err());
        drop(bp);
        drop(tf);
    }

    #[test]
    fn mark_dirty_stamps_first_dirty_time_only() {
        let (bp, clock, _tf) = pool("mark", 4);
        let (_pgno, frame) = bp.new_page(PageType::Leaf, RelId(1)).unwrap();
        {
            let mut p = frame.write();
            p.dirty = false; // pretend it was flushed
        }
        clock.advance_to(Timestamp(100));
        {
            let mut p = frame.write();
            bp.mark_dirty(&mut p);
            assert_eq!(p.dirtied_at, Timestamp(100));
        }
        clock.advance_to(Timestamp(200));
        {
            let mut p = frame.write();
            bp.mark_dirty(&mut p); // already dirty: timestamp unchanged
            assert_eq!(p.dirtied_at, Timestamp(100));
        }
    }
}
