//! Client-side verification of CCDB read proofs.
//!
//! This crate lets a client check, **out of process and with no engine or
//! storage dependencies**, that a value it read from a CCDB server is the
//! one attested by the last sealed audit epoch. The trust chain is:
//!
//! 1. At the end of every clean audit the auditor seals an **epoch head**
//!    on WORM: the epoch number, the audit time, the ADD-HASH of the
//!    canonical tuple set, and a Merkle root over the content hashes of
//!    every page in the signed snapshot. The head is signed with a Lamport
//!    one-time key derived from the auditor's master seed (a different
//!    derivation domain than the snapshot signature, so the two one-time
//!    keys never collide).
//! 2. A **read proof** carries one snapshot page verbatim (its cells), the
//!    index of the tuple cell being proven, and the Merkle inclusion path
//!    from that page's leaf hash up to the epoch head's root.
//! 3. The client re-derives the leaf hash from the page bytes, walks the
//!    path, compares against the signed root, checks the Lamport signature
//!    against a pinned public-key fingerprint, and decodes the tuple cell
//!    itself.
//!
//! Everything the verifier needs is re-specified here from first
//! principles — the page content hash and the on-page tuple cell layout are
//! *independent reimplementations* of the engine's formats (cross-checked
//! by the engine's test suite), which is what makes the crate a meaningful
//! second implementation rather than a re-export of the code it audits.
//!
//! # Security notes
//!
//! * A Lamport signature only exercises the key elements selected by the
//!   message bits, so a tampered *public key* can still verify if the
//!   flipped byte lands in an unexercised element. Clients MUST pin the
//!   key's fingerprint (obtained out of band, e.g. at provisioning) and
//!   pass it as `expected_fingerprint`; with a pinned fingerprint every
//!   byte of the key is bound.
//! * Leaf and interior Merkle hashes use distinct domain prefixes, so an
//!   interior node can never be replayed as a leaf or vice versa.

use ccdb_crypto::{sha256, Digest, LamportPublicKey, LamportSignature, Sha256};

/// Decode / verification failure. One variant per trust-chain link so test
/// suites can assert *why* a mutated proof was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The epoch head bytes are malformed.
    BadHead(String),
    /// The proof bytes are malformed.
    BadProof(String),
    /// The signature or public key bytes are malformed.
    BadSignature,
    /// The public key does not match the pinned fingerprint.
    KeyMismatch,
    /// The Lamport signature does not verify against the head.
    SignatureInvalid,
    /// The proof's epoch does not match the head's.
    EpochMismatch { head: u64, proof: u64 },
    /// The Merkle path does not reach the signed root.
    RootMismatch,
    /// The proven cell index is out of range for the page.
    CellIndexOutOfRange,
    /// The tuple cell is malformed or not a committed version.
    BadTuple(String),
    /// The proven tuple is not the requested `(rel, key)`.
    TupleMismatch,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BadHead(m) => write!(f, "malformed epoch head: {m}"),
            VerifyError::BadProof(m) => write!(f, "malformed read proof: {m}"),
            VerifyError::BadSignature => write!(f, "malformed signature or public key"),
            VerifyError::KeyMismatch => write!(f, "public key does not match pinned fingerprint"),
            VerifyError::SignatureInvalid => write!(f, "epoch head signature invalid"),
            VerifyError::EpochMismatch { head, proof } => {
                write!(f, "proof epoch {proof} does not match head epoch {head}")
            }
            VerifyError::RootMismatch => write!(f, "merkle path does not reach the signed root"),
            VerifyError::CellIndexOutOfRange => write!(f, "cell index out of range"),
            VerifyError::BadTuple(m) => write!(f, "malformed tuple cell: {m}"),
            VerifyError::TupleMismatch => write!(f, "proven tuple is not the requested key"),
        }
    }
}

impl std::error::Error for VerifyError {}

type Result<T> = std::result::Result<T, VerifyError>;

/// Epoch head encoding magic.
const HEAD_MAGIC: u32 = 0xCCDB_E40D;
/// Read proof encoding magic.
const PROOF_MAGIC: u32 = 0xCCDB_4EAD;

/// Domain prefix for Merkle leaf hashes (one per snapshot page).
const LEAF_DOMAIN: &[u8] = b"ccdb:mt-page";
/// Domain prefix for interior Merkle node hashes.
const NODE_DOMAIN: &[u8] = b"ccdb:mt-node";
/// Domain prefix for the signed head message.
const SIG_DOMAIN: &[u8] = b"ccdb:epoch-head-sig";

/// The signed summary of one sealed audit epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochHead {
    /// The audit epoch this head seals.
    pub epoch: u64,
    /// Compliance-clock time of the audit (microseconds).
    pub time: u64,
    /// ADD-HASH of the canonical tuple set at the audit (64 raw bytes).
    pub tuple_hash: [u8; 64],
    /// Merkle root over the leaf hashes of every snapshot page.
    pub page_root: Digest,
    /// Number of Merkle leaves (snapshot pages) under `page_root`.
    pub page_count: u64,
}

impl EpochHead {
    /// Encodes the head body (the bytes that get signed).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ccdb_common::ByteWriter::with_capacity(120);
        w.put_u32(HEAD_MAGIC);
        w.put_u64(self.epoch);
        w.put_u64(self.time);
        w.put_bytes(&self.tuple_hash);
        w.put_bytes(&self.page_root);
        w.put_u64(self.page_count);
        w.into_vec()
    }

    /// Decodes a head body.
    pub fn decode(bytes: &[u8]) -> Result<EpochHead> {
        let mut r = ccdb_common::ByteReader::new(bytes);
        let bad = |m: &str| VerifyError::BadHead(m.to_string());
        if r.get_u32().map_err(|_| bad("truncated"))? != HEAD_MAGIC {
            return Err(bad("bad magic"));
        }
        let epoch = r.get_u64().map_err(|_| bad("truncated"))?;
        let time = r.get_u64().map_err(|_| bad("truncated"))?;
        let mut tuple_hash = [0u8; 64];
        tuple_hash.copy_from_slice(r.get_bytes(64).map_err(|_| bad("truncated"))?);
        let mut page_root = [0u8; 32];
        page_root.copy_from_slice(r.get_bytes(32).map_err(|_| bad("truncated"))?);
        let page_count = r.get_u64().map_err(|_| bad("truncated"))?;
        if !r.is_exhausted() {
            return Err(bad("trailing bytes"));
        }
        Ok(EpochHead { epoch, time, tuple_hash, page_root, page_count })
    }

    /// The message actually signed by the auditor's epoch-head key:
    /// a domain-separated hash of the encoded body.
    pub fn signed_message(head_bytes: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(SIG_DOMAIN).update(head_bytes);
        h.finalize()
    }
}

/// One snapshot page as carried in a proof. Field order and hashing match
/// the auditor's snapshot format exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofPage {
    /// Page number.
    pub pgno: u64,
    /// Owning relation id.
    pub rel: u32,
    /// Page kind byte (1 = leaf, 2 = inner).
    pub kind: u8,
    /// Historical (time-split) flag.
    pub historical: bool,
    /// Aux field (TSB split time).
    pub aux: u64,
    /// Full cell content in slot order.
    pub cells: Vec<Vec<u8>>,
}

/// A Merkle inclusion proof for one tuple cell against a sealed epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadProof {
    /// Epoch the proof is against (must match the head).
    pub epoch: u64,
    /// The snapshot page containing the proven cell.
    pub page: ProofPage,
    /// Index of the proven cell within `page.cells`.
    pub cell_index: u32,
    /// Sibling hashes from the page's leaf up to the root. `true` means the
    /// sibling is on the left (the running hash is the right child).
    pub path: Vec<(bool, Digest)>,
}

impl ReadProof {
    /// Encodes the proof.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ccdb_common::ByteWriter::new();
        w.put_u32(PROOF_MAGIC);
        w.put_u64(self.epoch);
        w.put_u64(self.page.pgno);
        w.put_u32(self.page.rel);
        w.put_u8(self.page.kind);
        w.put_u8(if self.page.historical { 1 } else { 0 });
        w.put_u64(self.page.aux);
        w.put_u32(self.page.cells.len() as u32);
        for c in &self.page.cells {
            w.put_len_bytes(c);
        }
        w.put_u32(self.cell_index);
        w.put_u32(self.path.len() as u32);
        for (left, sib) in &self.path {
            w.put_u8(if *left { 1 } else { 0 });
            w.put_bytes(sib);
        }
        w.into_vec()
    }

    /// Decodes a proof.
    pub fn decode(bytes: &[u8]) -> Result<ReadProof> {
        let mut r = ccdb_common::ByteReader::new(bytes);
        let bad = |m: &str| VerifyError::BadProof(m.to_string());
        if r.get_u32().map_err(|_| bad("truncated"))? != PROOF_MAGIC {
            return Err(bad("bad magic"));
        }
        let epoch = r.get_u64().map_err(|_| bad("truncated"))?;
        let pgno = r.get_u64().map_err(|_| bad("truncated"))?;
        let rel = r.get_u32().map_err(|_| bad("truncated"))?;
        let kind = r.get_u8().map_err(|_| bad("truncated"))?;
        let historical = match r.get_u8().map_err(|_| bad("truncated"))? {
            0 => false,
            1 => true,
            _ => return Err(bad("bad historical flag")),
        };
        let aux = r.get_u64().map_err(|_| bad("truncated"))?;
        let cn = r.get_u32().map_err(|_| bad("truncated"))? as usize;
        let mut cells = Vec::with_capacity(cn.min(4096));
        for _ in 0..cn {
            cells.push(r.get_len_bytes().map_err(|_| bad("truncated cell"))?.to_vec());
        }
        let cell_index = r.get_u32().map_err(|_| bad("truncated"))?;
        let pn = r.get_u32().map_err(|_| bad("truncated"))? as usize;
        let mut path = Vec::with_capacity(pn.min(64));
        for _ in 0..pn {
            let left = match r.get_u8().map_err(|_| bad("truncated path"))? {
                0 => false,
                1 => true,
                _ => return Err(bad("bad path side flag")),
            };
            let mut sib = [0u8; 32];
            sib.copy_from_slice(r.get_bytes(32).map_err(|_| bad("truncated path"))?);
            path.push((left, sib));
        }
        if !r.is_exhausted() {
            return Err(bad("trailing bytes"));
        }
        Ok(ReadProof {
            epoch,
            page: ProofPage { pgno, rel, kind, historical, aux, cells },
            cell_index,
            path,
        })
    }
}

/// The content hash of a page's cell list: `sha256((len_le ++ cell)*)`.
/// Byte-identical to the engine's `page_content_hash`.
pub fn page_content_hash(cells: &[Vec<u8>]) -> Digest {
    let mut h = Sha256::new();
    for c in cells {
        h.update(&(c.len() as u32).to_le_bytes());
        h.update(c);
    }
    h.finalize()
}

/// The Merkle leaf hash of one snapshot page: binds the page number, the
/// owning relation, the page kind/flags, and the cell content.
pub fn page_leaf_hash(page: &ProofPage) -> Digest {
    let mut h = Sha256::new();
    h.update(LEAF_DOMAIN)
        .update(&page.pgno.to_le_bytes())
        .update(&page.rel.to_le_bytes())
        .update(&[page.kind, if page.historical { 1 } else { 0 }])
        .update(&page.aux.to_le_bytes())
        .update(&page_content_hash(&page.cells));
    h.finalize()
}

fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(NODE_DOMAIN).update(left).update(right);
    h.finalize()
}

/// Merkle root over `leaves`. Odd nodes at any level are carried up
/// unchanged (no duplication). An empty tree hashes the leaf domain alone,
/// so "no pages" still has a well-defined, non-forgeable root.
pub fn merkle_root(leaves: &[Digest]) -> Digest {
    if leaves.is_empty() {
        return sha256(LEAF_DOMAIN);
    }
    let mut level: Vec<Digest> = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(node_hash(&pair[0], &pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// The inclusion path for `leaves[index]`: sibling hashes from the bottom
/// level up, each tagged with whether the sibling sits on the left.
/// Panics if `index` is out of range (server-side builder bug).
pub fn merkle_path(leaves: &[Digest], index: usize) -> Vec<(bool, Digest)> {
    assert!(index < leaves.len(), "merkle_path index out of range");
    let mut path = Vec::new();
    let mut level: Vec<Digest> = leaves.to_vec();
    let mut i = index;
    while level.len() > 1 {
        if i.is_multiple_of(2) {
            if i + 1 < level.len() {
                path.push((false, level[i + 1]));
            }
            // else: odd node carried up, no sibling at this level
        } else {
            path.push((true, level[i - 1]));
        }
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(node_hash(&pair[0], &pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
        i /= 2;
    }
    path
}

/// Folds a leaf hash up an inclusion path.
pub fn fold_path(leaf: Digest, path: &[(bool, Digest)]) -> Digest {
    let mut acc = leaf;
    for (sibling_left, sib) in path {
        acc = if *sibling_left { node_hash(sib, &acc) } else { node_hash(&acc, sib) };
    }
    acc
}

/// A committed tuple version decoded from an on-page cell. Independent
/// reimplementation of the engine's cell layout:
/// `eol u8 ++ time_tag u8 ++ time u64 ++ seq u16 ++ rel u32 ++
///  len-prefixed key ++ len-prefixed value` (all little-endian).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifiedTuple {
    /// Owning relation id.
    pub rel: u32,
    /// Primary key bytes.
    pub key: Vec<u8>,
    /// Commit time (microseconds). Proofs only cover committed versions.
    pub commit_time: u64,
    /// Tuple-order number within its page.
    pub seq: u16,
    /// End-of-life marker: this version records a deletion.
    pub end_of_life: bool,
    /// The row payload (empty for end-of-life versions).
    pub value: Vec<u8>,
}

/// Decodes a committed tuple cell. Rejects pending (unstamped) cells: a
/// proof against a sealed epoch must carry a resolved commit time.
pub fn decode_tuple_cell(cell: &[u8]) -> Result<VerifiedTuple> {
    let mut r = ccdb_common::ByteReader::new(cell);
    let bad = |m: &str| VerifyError::BadTuple(m.to_string());
    let end_of_life = match r.get_u8().map_err(|_| bad("truncated"))? {
        0 => false,
        1 => true,
        _ => return Err(bad("bad end-of-life flag")),
    };
    let commit_time = match r.get_u8().map_err(|_| bad("truncated"))? {
        1 => r.get_u64().map_err(|_| bad("truncated"))?,
        0 => return Err(bad("pending (unstamped) cell in proof")),
        _ => return Err(bad("bad time tag")),
    };
    let seq = r.get_u16().map_err(|_| bad("truncated"))?;
    let rel = r.get_u32().map_err(|_| bad("truncated"))?;
    let key = r.get_len_bytes().map_err(|_| bad("truncated key"))?.to_vec();
    let value = r.get_len_bytes().map_err(|_| bad("truncated value"))?.to_vec();
    if !r.is_exhausted() {
        return Err(bad("trailing bytes"));
    }
    Ok(VerifiedTuple { rel, key, commit_time, seq, end_of_life, value })
}

/// The result of a successful verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The decoded, signature-checked epoch head.
    pub head: EpochHead,
    /// The proven tuple version.
    pub tuple: VerifiedTuple,
    /// The proven value: `None` when the version is end-of-life (the key
    /// was deleted as of the sealed epoch).
    pub value: Option<Vec<u8>>,
}

/// Verifies a read proof end to end.
///
/// * `head_bytes`, `sig_bytes`, `pub_bytes` — the epoch head body, its
///   Lamport signature, and the signing public key, as served from WORM.
/// * `expected_fingerprint` — the pinned sha256 fingerprint of the signing
///   key. Pass `None` only in tests; see the crate docs for why production
///   clients must pin.
/// * `proof_bytes` — the encoded [`ReadProof`].
/// * `rel`, `key` — what the client asked for; the proof must be about
///   exactly this tuple.
pub fn verify_read(
    head_bytes: &[u8],
    sig_bytes: &[u8],
    pub_bytes: &[u8],
    expected_fingerprint: Option<&Digest>,
    proof_bytes: &[u8],
    rel: u32,
    key: &[u8],
) -> Result<ReadOutcome> {
    let head = EpochHead::decode(head_bytes)?;
    let pk = LamportPublicKey::from_bytes(pub_bytes).ok_or(VerifyError::BadSignature)?;
    if let Some(fp) = expected_fingerprint {
        if pk.fingerprint() != *fp {
            return Err(VerifyError::KeyMismatch);
        }
    }
    let sig = LamportSignature::from_bytes(sig_bytes).ok_or(VerifyError::BadSignature)?;
    if !pk.verify(&EpochHead::signed_message(head_bytes), &sig) {
        return Err(VerifyError::SignatureInvalid);
    }
    let proof = ReadProof::decode(proof_bytes)?;
    if proof.epoch != head.epoch {
        return Err(VerifyError::EpochMismatch { head: head.epoch, proof: proof.epoch });
    }
    let cell =
        proof.page.cells.get(proof.cell_index as usize).ok_or(VerifyError::CellIndexOutOfRange)?;
    let tuple = decode_tuple_cell(cell)?;
    if tuple.rel != rel || tuple.rel != proof.page.rel || tuple.key != key {
        return Err(VerifyError::TupleMismatch);
    }
    if fold_path(page_leaf_hash(&proof.page), &proof.path) != head.page_root {
        return Err(VerifyError::RootMismatch);
    }
    let value = if tuple.end_of_life { None } else { Some(tuple.value.clone()) };
    Ok(ReadOutcome { head, tuple, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_crypto::LamportKeyPair;

    fn cell(rel: u32, key: &[u8], t: u64, seq: u16, eol: bool, value: &[u8]) -> Vec<u8> {
        let mut w = ccdb_common::ByteWriter::new();
        w.put_u8(if eol { 1 } else { 0 });
        w.put_u8(1); // committed
        w.put_u64(t);
        w.put_u16(seq);
        w.put_u32(rel);
        w.put_len_bytes(key);
        w.put_len_bytes(value);
        w.into_vec()
    }

    fn pending_cell() -> Vec<u8> {
        let mut w = ccdb_common::ByteWriter::new();
        w.put_u8(0);
        w.put_u8(0); // pending
        w.put_u64(7);
        w.put_u16(0);
        w.put_u32(1);
        w.put_len_bytes(b"k");
        w.put_len_bytes(b"v");
        w.into_vec()
    }

    struct Fixture {
        head_bytes: Vec<u8>,
        sig: Vec<u8>,
        pk: Vec<u8>,
        fingerprint: Digest,
        proof_bytes: Vec<u8>,
    }

    /// Builds a 3-page epoch and a proof for page 1's second cell.
    fn fixture() -> Fixture {
        let pages = [
            ProofPage {
                pgno: 3,
                rel: 1,
                kind: 1,
                historical: false,
                aux: 0,
                cells: vec![cell(1, b"a", 100, 0, false, b"va")],
            },
            ProofPage {
                pgno: 4,
                rel: 1,
                kind: 1,
                historical: false,
                aux: 0,
                cells: vec![
                    cell(1, b"b", 200, 0, false, b"old"),
                    cell(1, b"b", 300, 1, false, b"vb"),
                ],
            },
            ProofPage {
                pgno: 5,
                rel: 1,
                kind: 2,
                historical: false,
                aux: 0,
                cells: vec![b"sep".to_vec()],
            },
        ];
        let leaves: Vec<Digest> = pages.iter().map(page_leaf_hash).collect();
        let head = EpochHead {
            epoch: 9,
            time: 123_456,
            tuple_hash: [0xAB; 64],
            page_root: merkle_root(&leaves),
            page_count: leaves.len() as u64,
        };
        let head_bytes = head.encode();
        let kp = LamportKeyPair::from_seed(&[7u8; 32]);
        let sig = kp.sign(&EpochHead::signed_message(&head_bytes)).to_bytes();
        let pk = kp.public_key();
        let proof = ReadProof {
            epoch: 9,
            page: pages[1].clone(),
            cell_index: 1,
            path: merkle_path(&leaves, 1),
        };
        Fixture {
            head_bytes,
            sig,
            fingerprint: pk.fingerprint(),
            pk: pk.to_bytes(),
            proof_bytes: proof.encode(),
        }
    }

    #[test]
    fn head_roundtrip() {
        let h = EpochHead {
            epoch: 3,
            time: 55,
            tuple_hash: [9; 64],
            page_root: [8; 32],
            page_count: 12,
        };
        assert_eq!(EpochHead::decode(&h.encode()).unwrap(), h);
        assert!(EpochHead::decode(&[1, 2, 3]).is_err());
        let mut trailing = h.encode();
        trailing.push(0);
        assert!(EpochHead::decode(&trailing).is_err());
    }

    #[test]
    fn proof_roundtrip() {
        let f = fixture();
        let p = ReadProof::decode(&f.proof_bytes).unwrap();
        assert_eq!(p.encode(), f.proof_bytes);
    }

    #[test]
    fn merkle_paths_verify_for_every_leaf() {
        for n in 1..=9usize {
            let leaves: Vec<Digest> = (0..n).map(|i| sha256(&[i as u8])).collect();
            let root = merkle_root(&leaves);
            for (i, leaf) in leaves.iter().enumerate() {
                let path = merkle_path(&leaves, i);
                assert_eq!(fold_path(*leaf, &path), root, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn merkle_path_rejects_wrong_leaf() {
        let leaves: Vec<Digest> = (0..5).map(|i| sha256(&[i as u8])).collect();
        let root = merkle_root(&leaves);
        let path = merkle_path(&leaves, 2);
        assert_ne!(fold_path(leaves[3], &path), root);
    }

    #[test]
    fn empty_tree_root_is_stable() {
        assert_eq!(merkle_root(&[]), merkle_root(&[]));
        assert_ne!(merkle_root(&[]), merkle_root(&[sha256(b"x")]));
    }

    #[test]
    fn good_proof_verifies() {
        let f = fixture();
        let out = verify_read(
            &f.head_bytes,
            &f.sig,
            &f.pk,
            Some(&f.fingerprint),
            &f.proof_bytes,
            1,
            b"b",
        )
        .unwrap();
        assert_eq!(out.value.as_deref(), Some(&b"vb"[..]));
        assert_eq!(out.tuple.commit_time, 300);
        assert_eq!(out.head.epoch, 9);
    }

    #[test]
    fn wrong_key_rejected() {
        let f = fixture();
        let err = verify_read(
            &f.head_bytes,
            &f.sig,
            &f.pk,
            Some(&f.fingerprint),
            &f.proof_bytes,
            1,
            b"a",
        )
        .unwrap_err();
        assert_eq!(err, VerifyError::TupleMismatch);
    }

    #[test]
    fn wrong_fingerprint_rejected() {
        let f = fixture();
        let err =
            verify_read(&f.head_bytes, &f.sig, &f.pk, Some(&[0; 32]), &f.proof_bytes, 1, b"b")
                .unwrap_err();
        assert_eq!(err, VerifyError::KeyMismatch);
    }

    #[test]
    fn tampered_head_rejected() {
        let f = fixture();
        let mut head = f.head_bytes.clone();
        head[8] ^= 1; // epoch byte
        let err = verify_read(&head, &f.sig, &f.pk, Some(&f.fingerprint), &f.proof_bytes, 1, b"b")
            .unwrap_err();
        assert_eq!(err, VerifyError::SignatureInvalid);
    }

    #[test]
    fn tampered_cell_rejected() {
        let f = fixture();
        let mut proof = ReadProof::decode(&f.proof_bytes).unwrap();
        // Flip a byte of the proven value: the page content hash changes.
        let last = proof.page.cells[1].len() - 1;
        proof.page.cells[1][last] ^= 1;
        let err = verify_read(
            &f.head_bytes,
            &f.sig,
            &f.pk,
            Some(&f.fingerprint),
            &proof.encode(),
            1,
            b"b",
        )
        .unwrap_err();
        assert_eq!(err, VerifyError::RootMismatch);
    }

    #[test]
    fn pending_cell_rejected() {
        let err = decode_tuple_cell(&pending_cell()).unwrap_err();
        assert!(matches!(err, VerifyError::BadTuple(_)));
    }

    #[test]
    fn eol_reads_as_absent() {
        let c = cell(1, b"gone", 500, 0, true, b"");
        let t = decode_tuple_cell(&c).unwrap();
        assert!(t.end_of_life);
    }
}
