//! Cryptographic-primitive benchmarks, including the paper's key algorithmic
//! ablation: the sort-and-merge completeness check the ADD-HASH replaces.
//!
//! Section IV-A: the baseline check sorts `L` (`O(|L| log |L|)`) and merges;
//! the commutative incremental hash makes the check a single unordered pass.

use ccdb_bench::microbench::{bench, group};
use ccdb_bench::synthetic_tuples;
use ccdb_crypto::{sha256, AddHash, HsChain, LamportKeyPair};

fn bench_sha256() {
    group("sha256");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xABu8; size];
        bench(&format!("sha256/{size}"), || sha256(&data));
    }
}

fn bench_completeness_check() {
    // The ablation: verifying Df = Ds ∪ L by sort+merge vs by ADD-HASH.
    group("completeness_check");
    for n in [1_000usize, 10_000] {
        let log: Vec<Vec<u8>> = synthetic_tuples(n);
        let snapshot: Vec<Vec<u8>> = synthetic_tuples(n);
        let mut final_state: Vec<Vec<u8>> = snapshot.iter().chain(log.iter()).cloned().collect();
        // The final state arrives in key order, not log order.
        final_state.sort();
        bench(&format!("sort_merge/{n}"), || {
            // Paper baseline: sort L, merge with (sorted) Ds, compare
            // with (sorted) Df.
            let mut l = log.clone();
            l.sort();
            let mut merged: Vec<&Vec<u8>> = snapshot.iter().chain(l.iter()).collect();
            merged.sort();
            let equal = merged.len() == final_state.len()
                && merged.iter().zip(final_state.iter()).all(|(a, b)| *a == b);
            assert!(equal);
        });
        bench(&format!("add_hash/{n}"), || {
            // Single unordered pass over each input.
            let mut expected = AddHash::new();
            for t in snapshot.iter().chain(log.iter()) {
                expected.add(t);
            }
            let mut actual = AddHash::new();
            for t in &final_state {
                actual.add(t);
            }
            assert_eq!(expected, actual);
        });
    }
}

fn bench_hs_chain() {
    group("hs_chain");
    let tuples = synthetic_tuples(30); // one page worth
    bench("hs_chain_page", || {
        let mut chain = HsChain::new();
        for t in &tuples {
            chain.extend(t);
        }
        chain.value()
    });
}

fn bench_lamport() {
    group("lamport");
    bench("keygen", || LamportKeyPair::from_seed(&[7u8; 32]));
    let msg = b"snapshot digest";
    bench("sign_verify", || {
        let kp = LamportKeyPair::from_seed(&[7u8; 32]);
        let sig = kp.sign(msg);
        assert!(kp.public_key().verify(msg, &sig));
    });
}

fn main() {
    bench_sha256();
    bench_completeness_check();
    bench_hs_chain();
    bench_lamport();
}
