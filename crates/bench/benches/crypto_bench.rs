//! Cryptographic-primitive benchmarks, including the paper's key algorithmic
//! ablation: the sort-and-merge completeness check the ADD-HASH replaces.
//!
//! Section IV-A: the baseline check sorts `L` (`O(|L| log |L|)`) and merges;
//! the commutative incremental hash makes the check a single unordered pass.

use ccdb_bench::synthetic_tuples;
use ccdb_crypto::{sha256, AddHash, HsChain, LamportKeyPair};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha256(d))
        });
    }
    g.finish();
}

fn bench_completeness_check(c: &mut Criterion) {
    // The ablation: verifying Df = Ds ∪ L by sort+merge vs by ADD-HASH.
    let mut g = c.benchmark_group("completeness_check");
    g.sample_size(10);
    for n in [1_000usize, 10_000] {
        let log: Vec<Vec<u8>> = synthetic_tuples(n);
        let snapshot: Vec<Vec<u8>> = synthetic_tuples(n);
        let mut final_state: Vec<Vec<u8>> =
            snapshot.iter().chain(log.iter()).cloned().collect();
        // The final state arrives in key order, not log order.
        final_state.sort();
        g.bench_with_input(BenchmarkId::new("sort_merge", n), &n, |b, _| {
            b.iter(|| {
                // Paper baseline: sort L, merge with (sorted) Ds, compare
                // with (sorted) Df.
                let mut l = log.clone();
                l.sort();
                let mut merged: Vec<&Vec<u8>> = snapshot.iter().chain(l.iter()).collect();
                merged.sort();
                let equal = merged.len() == final_state.len()
                    && merged.iter().zip(final_state.iter()).all(|(a, b)| *a == b);
                assert!(equal);
            })
        });
        g.bench_with_input(BenchmarkId::new("add_hash", n), &n, |b, _| {
            b.iter(|| {
                // Single unordered pass over each input.
                let mut expected = AddHash::new();
                for t in snapshot.iter().chain(log.iter()) {
                    expected.add(t);
                }
                let mut actual = AddHash::new();
                for t in &final_state {
                    actual.add(t);
                }
                assert_eq!(expected, actual);
            })
        });
    }
    g.finish();
}

fn bench_hs_chain(c: &mut Criterion) {
    let tuples = synthetic_tuples(30); // one page worth
    c.bench_function("hs_chain_page", |b| {
        b.iter(|| {
            let mut chain = HsChain::new();
            for t in &tuples {
                chain.extend(t);
            }
            chain.value()
        })
    });
}

fn bench_lamport(c: &mut Criterion) {
    let mut g = c.benchmark_group("lamport");
    g.sample_size(10);
    g.bench_function("keygen", |b| b.iter(|| LamportKeyPair::from_seed(&[7u8; 32])));
    let msg = b"snapshot digest";
    g.bench_function("sign_verify", |b| {
        b.iter(|| {
            let kp = LamportKeyPair::from_seed(&[7u8; 32]);
            let sig = kp.sign(msg);
            assert!(kp.public_key().verify(msg, &sig));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sha256, bench_completeness_check, bench_hs_chain, bench_lamport);
criterion_main!(benches);
