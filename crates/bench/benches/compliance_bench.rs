//! Compliance-layer ablations: the per-transaction cost of each architecture
//! mode, the plugin's page-diff cost, and WORM append throughput.

use ccdb_bench::{open_db, TempDir};
use ccdb_core::Mode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_txn_by_mode(c: &mut Criterion) {
    // The Figure 3 ablation at microbench granularity: one small write
    // transaction under each mode (includes WAL, compliance logging, and
    // the periodic sweep amortized in).
    let mut g = c.benchmark_group("txn_by_mode");
    g.sample_size(20);
    for mode in [Mode::Regular, Mode::LogConsistent, Mode::HashOnRead] {
        let dir = TempDir::new("mode-bench");
        let (db, _clock) = open_db(&dir, mode, 1024);
        let rel = db
            .create_relation("bench", ccdb_btree::SplitPolicy::KeyOnly)
            .unwrap();
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(format!("{mode:?}")), &mode, |b, _| {
            b.iter(|| {
                i += 1;
                let t = db.begin().unwrap();
                db.write(t, rel, &i.to_be_bytes(), &[0u8; 128]).unwrap();
                db.commit(t).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_worm_append(c: &mut Criterion) {
    use ccdb_common::{Timestamp, VirtualClock};
    use ccdb_worm::WormServer;
    use std::sync::Arc;
    let dir = TempDir::new("worm-bench");
    let worm = WormServer::open(&dir.0, Arc::new(VirtualClock::new())).unwrap();
    let f = worm.create("bench-log", Timestamp::MAX).unwrap();
    let payload = vec![0xCDu8; 512];
    c.bench_function("worm_append_512B", |b| b.iter(|| worm.append(&f, &payload).unwrap()));
}

fn bench_audit_scaling(c: &mut Criterion) {
    // Audit cost as the epoch's activity grows: the paper's "single pass"
    // claim means roughly linear scaling in |L| + |Df|.
    let mut g = c.benchmark_group("audit_scaling");
    g.sample_size(10);
    for writes in [500usize, 2_000] {
        g.bench_with_input(BenchmarkId::from_parameter(writes), &writes, |b, &n| {
            b.iter_with_setup(
                || {
                    let dir = TempDir::new("audit-bench");
                    let (db, _clock) = open_db(&dir, Mode::HashOnRead, 1024);
                    let rel = db
                        .create_relation("bench", ccdb_btree::SplitPolicy::KeyOnly)
                        .unwrap();
                    for i in 0..n as u64 {
                        let t = db.begin().unwrap();
                        db.write(t, rel, &i.to_be_bytes(), &[0u8; 128]).unwrap();
                        db.commit(t).unwrap();
                    }
                    (db, dir)
                },
                |(db, _dir)| {
                    let report = db.audit().unwrap();
                    assert!(report.is_clean());
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_txn_by_mode, bench_worm_append, bench_audit_scaling);
criterion_main!(benches);
