//! Compliance-layer ablations: the per-transaction cost of each architecture
//! mode, the plugin's page-diff cost, and WORM append throughput.

use ccdb_bench::microbench::{bench, bench_with_setup, group};
use ccdb_bench::{open_db, TempDir};
use ccdb_core::Mode;

fn bench_txn_by_mode() {
    // The Figure 3 ablation at microbench granularity: one small write
    // transaction under each mode (includes WAL, compliance logging, and
    // the periodic sweep amortized in).
    group("txn_by_mode");
    for mode in [Mode::Regular, Mode::LogConsistent, Mode::HashOnRead] {
        let dir = TempDir::new("mode-bench");
        let (db, _clock) = open_db(&dir, mode, 1024);
        let rel = db.create_relation("bench", ccdb_btree::SplitPolicy::KeyOnly).unwrap();
        let mut i = 0u64;
        bench(&format!("txn/{mode:?}"), || {
            i += 1;
            let t = db.begin().unwrap();
            db.write(t, rel, &i.to_be_bytes(), &[0u8; 128]).unwrap();
            db.commit(t).unwrap()
        });
    }
}

fn bench_worm_append() {
    group("worm");
    use ccdb_common::{Timestamp, VirtualClock};
    use ccdb_worm::WormServer;
    use std::sync::Arc;
    let dir = TempDir::new("worm-bench");
    let worm = WormServer::open(&dir.0, Arc::new(VirtualClock::new())).unwrap();
    let f = worm.create("bench-log", Timestamp::MAX).unwrap();
    let payload = vec![0xCDu8; 512];
    bench("worm_append_512B", || worm.append(&f, &payload).unwrap());
}

fn bench_audit_scaling() {
    // Audit cost as the epoch's activity grows: the paper's "single pass"
    // claim means roughly linear scaling in |L| + |Df|.
    group("audit_scaling");
    for writes in [500usize, 2_000] {
        bench_with_setup(
            &format!("audit/{writes}"),
            3,
            || {
                let dir = TempDir::new("audit-bench");
                let (db, _clock) = open_db(&dir, Mode::HashOnRead, 1024);
                let rel = db.create_relation("bench", ccdb_btree::SplitPolicy::KeyOnly).unwrap();
                for i in 0..writes as u64 {
                    let t = db.begin().unwrap();
                    db.write(t, rel, &i.to_be_bytes(), &[0u8; 128]).unwrap();
                    db.commit(t).unwrap();
                }
                (db, dir)
            },
            |(db, _dir)| {
                let report = db.audit().unwrap();
                assert!(report.is_clean());
            },
        );
    }
}

fn main() {
    bench_txn_by_mode();
    bench_worm_append();
    bench_audit_scaling();
}
