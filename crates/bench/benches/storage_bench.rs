//! Storage and B+-tree microbenchmarks: the substrate costs underneath the
//! paper's ~10 % figure.

use std::sync::Arc;

use ccdb_bench::microbench::{bench, bench_with_setup, group};
use ccdb_bench::TempDir;
use ccdb_btree::{BTree, SplitPolicy};
use ccdb_common::{Clock, Duration, PageNo, RelId, VirtualClock};
use ccdb_storage::{BufferPool, DiskManager, Page, PageType, WriteTime};

fn bench_page_ops() {
    group("page");
    let cell = vec![0x5Au8; 120];
    bench("page_insert_30_cells", || {
        let mut p = Page::new(PageNo(1), PageType::Leaf, RelId(1));
        for _ in 0..30 {
            p.append_cell(&cell).unwrap();
        }
        p.cell_count()
    });
    let mut p = Page::new(PageNo(1), PageType::Leaf, RelId(1));
    for _ in 0..30 {
        p.append_cell(&cell).unwrap();
    }
    bench("page_checksum", || {
        p.finalize_for_write();
        p.verify_checksum()
    });
}

fn setup_tree(cap: usize) -> (Arc<BufferPool>, Arc<VirtualClock>, BTree, TempDir) {
    let dir = TempDir::new("bench-tree");
    let dm = Arc::new(DiskManager::open(dir.0.join("db.pages")).unwrap());
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(5)));
    let pool = Arc::new(BufferPool::new(dm, clock.clone(), cap));
    let tree = BTree::create(pool.clone(), clock.clone(), RelId(1), SplitPolicy::KeyOnly).unwrap();
    (pool, clock, tree, dir)
}

fn bench_btree() {
    group("btree");
    bench_with_setup(
        "insert_10k",
        3,
        || setup_tree(4096),
        |(_p, clock, tree, _d)| {
            for i in 0..10_000u32 {
                tree.insert(
                    format!("{i:08}").as_bytes(),
                    WriteTime::Committed(clock.now()),
                    false,
                    vec![0u8; 64],
                )
                .unwrap();
            }
        },
    );
    // Lookup benchmark over a prebuilt tree.
    let (_pool, clock, tree, _dir) = setup_tree(4096);
    for i in 0..50_000u32 {
        tree.insert(
            format!("{i:08}").as_bytes(),
            WriteTime::Committed(clock.now()),
            false,
            vec![0u8; 64],
        )
        .unwrap();
    }
    for probes in [1usize, 100] {
        let mut k = 0u32;
        bench(&format!("versions_lookup/{probes}"), || {
            let mut found = 0;
            for _ in 0..probes {
                k = (k.wrapping_mul(2654435761)) % 50_000;
                found += tree.versions(format!("{k:08}").as_bytes()).unwrap().len();
            }
            found
        });
    }
}

fn bench_buffer_pool() {
    group("buffer_pool");
    let dir = TempDir::new("bench-pool");
    let dm = Arc::new(DiskManager::open(dir.0.join("db.pages")).unwrap());
    let clock = Arc::new(VirtualClock::new());
    let pool = Arc::new(BufferPool::new(dm, clock, 128));
    let mut pgnos = Vec::new();
    for _ in 0..512 {
        let (pgno, frame) = pool.new_page(PageType::Leaf, RelId(1)).unwrap();
        frame.write().append_cell(&[0u8; 64]).unwrap();
        pgnos.push(pgno);
    }
    pool.flush_all().unwrap();
    let mut i = 0usize;
    bench("pool_fetch_mixed_hit_miss", || {
        i = (i + 97) % pgnos.len();
        let f = pool.fetch(pgnos[i]).unwrap();
        let n = f.read().cell_count();
        n
    });
}

fn main() {
    bench_page_ops();
    bench_btree();
    bench_buffer_pool();
}
