//! Adversary campaign fuzzing: seeded, randomized interleavings of honest
//! workload, compliance-lifecycle actions, and tampering — judged by the
//! paper's own invariant that every campaign ends **detected or harmless**.
//!
//! One campaign ([`run_campaign_schedule`]) is a pure function of its `u64`
//! seed. The seed draws a deployment shape (a single [`CompliantDb`], two
//! tenants over one shared WORM volume, or a 2–3-shard [`ShardedDb`]), then
//! interleaves:
//!
//! * **workload** — commits, aborts, and deletes across two relations: a
//!   `ledger` (no retention, the tamper target) and an `events` relation
//!   (time-split policy, seeded retention period — the lifecycle target);
//! * **virtual time** — clock advances from minutes to *years*, so
//!   retention expiry, holds, and shredding overlap realistically;
//! * **lifecycle** — litigation `Hold`s placed and released, auditable
//!   `Vacuum`/shred cycles (with WORM re-migration of expired pages),
//!   time-split migration to WORM, sealing audits, crash+recovery;
//! * **tampering** — a final phase drawing 0–3 actions from the full
//!   [`Mala`] catalogue (namespace/shard-aware via [`MalaTarget`]); ~⅓ of
//!   seeds draw zero tampers and double as false-alert controls.
//!
//! The verdict then runs **all three auditors** over the same state — the
//! serial oracle, the parallel pipeline, and the streaming daemon — and the
//! harness enforces:
//!
//! 1. **Verdict identity.** The three auditors agree on cleanliness,
//!    violations, forensics, and the completeness hash, per engine (and on
//!    the cross-shard join for sharded deployments).
//! 2. **Detected or harmless.** A tampering campaign whose verdict is
//!    *clean* must be observably harmless: every ledger key's full version
//!    history and every events key's latest value still match the honest
//!    model (reversion round trips and flips into dead space pass; any
//!    effective-but-undetected tamper fails the seed).
//! 3. **Zero false alerts.** Tamper-free campaigns must end clean, and
//!    every mid-campaign sealing audit must be clean.
//! 4. **Holds win.** A tuple covered by an active hold survives every
//!    expiry/shred path it overlaps, checked after every vacuum.
//!
//! Any failure carries the seed and the structured action trace
//! ([`CampaignFailure`]); replay exactly with
//! `CCDB_CAMPAIGN_REPLAY_SEED=<seed>` (see `tests/campaign.rs`).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use ccdb_adversary::{Mala, MalaTarget, TamperAction};
use ccdb_btree::SplitPolicy;
use ccdb_common::{Clock, Duration, RelId, SplitMix64, Timestamp, VirtualClock};
use ccdb_core::{
    AuditConfig, ComplianceConfig, CompliantDb, Hold, Mode, ShardedDb, TenantRegistry,
};

use crate::TempDir;

/// Default base seed for campaign suites (tests and the CI smoke binary
/// offset from here so a failing seed names one global schedule).
pub const CAMPAIGN_BASE_SEED: u64 = 0xCA3B_1600_0000_0000;

/// What one campaign did, for aggregate (non-vacuity) reporting.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The campaign's seed (sufficient to replay it exactly).
    pub seed: u64,
    /// Deployment shape: `"single"`, `"tenants"`, or `"sharded"`.
    pub deployment: &'static str,
    /// Compliance mode the campaign ran under.
    pub mode: Mode,
    /// Acknowledged commits across all domains.
    pub commits: usize,
    /// Crash+recovery rounds (whole deployment or single shard).
    pub crashes: usize,
    /// Mid-campaign sealing audits (all required clean).
    pub sealed_audits: usize,
    /// Vacuum cycles run.
    pub vacuums: usize,
    /// Versions shredded by vacuums.
    pub shredded: usize,
    /// Versions spared by an active litigation hold.
    pub held_spared: usize,
    /// Historical pages migrated to WORM.
    pub pages_migrated: usize,
    /// WORM pages re-migrated back for shredding.
    pub pages_remigrated: usize,
    /// Litigation holds placed.
    pub holds_placed: usize,
    /// Virtual time advanced by explicit clock jumps (µs).
    pub virtual_micros_advanced: u64,
    /// Tamper actions drawn in the tamper phase.
    pub tampers_drawn: usize,
    /// Tamper actions that landed (found victim bytes).
    pub tampers_landed: usize,
    /// Whether the final three-auditor verdict was dirty.
    pub detected: bool,
    /// Debug renderings of the final verdict's violations.
    pub violations: Vec<String>,
    /// The structured action trace.
    pub trace: Vec<String>,
}

/// A failed campaign: the seed, what went wrong, and the action trace up to
/// the failure — everything needed to replay and minimize.
#[derive(Debug)]
pub struct CampaignFailure {
    /// The failing seed.
    pub seed: u64,
    /// The contract point that broke.
    pub error: String,
    /// The structured action trace up to the failure.
    pub trace: Vec<String>,
}

impl fmt::Display for CampaignFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "campaign seed {}: {}", self.seed, self.error)?;
        writeln!(f, "action trace ({} actions):", self.trace.len())?;
        for (i, a) in self.trace.iter().enumerate() {
            writeln!(f, "  {:3}. {a}", i + 1)?;
        }
        write!(
            f,
            "replay: CCDB_CAMPAIGN_REPLAY_SEED={} cargo test --test campaign \
             replay_campaign_seed -- --ignored --nocapture",
            self.seed
        )
    }
}

/// Latest committed state of an events key: value (`None` = committed
/// delete) and its commit time, for expiry-eligibility checks.
#[derive(Clone, Debug)]
struct EventState {
    val: Option<Vec<u8>>,
    ct: Timestamp,
}

/// The honest model of one workload domain (a tenant, or the whole
/// single/sharded key space).
#[derive(Default)]
struct DomainModel {
    /// Full committed version history per ledger key (ledger is write-only
    /// and never under retention, so its history is stable).
    ledger: BTreeMap<Vec<u8>, Vec<Vec<u8>>>,
    /// Latest committed state per events key.
    events: BTreeMap<Vec<u8>, EventState>,
}

enum Deploy {
    Single(Option<Box<CompliantDb>>),
    Tenants { reg: TenantRegistry, names: Vec<String> },
    Sharded(Option<ShardedDb>),
}

impl Deploy {
    fn kind(&self) -> &'static str {
        match self {
            Deploy::Single(_) => "single",
            Deploy::Tenants { .. } => "tenants",
            Deploy::Sharded(_) => "sharded",
        }
    }

    /// Independent workload domains (each with its own model).
    fn domains(&self) -> usize {
        match self {
            Deploy::Single(_) | Deploy::Sharded(_) => 1,
            Deploy::Tenants { names, .. } => names.len(),
        }
    }

    /// Attackable/auditable engines, with their Mala targets.
    fn targets(&self) -> Vec<MalaTarget> {
        match self {
            Deploy::Single(_) => vec![MalaTarget::Root],
            Deploy::Tenants { names, .. } => {
                names.iter().map(|n| MalaTarget::Tenant(n.clone())).collect()
            }
            Deploy::Sharded(db) => {
                let n = db.as_ref().expect("deployment open").shards().len();
                (0..n).map(|i| MalaTarget::Shard(i as u32)).collect()
            }
        }
    }

    fn engines(&self) -> usize {
        self.targets().len()
    }

    /// Runs `f` against engine `i` (a tenant's db, a shard's db, or the
    /// single db).
    fn with_engine<R>(&self, i: usize, f: impl FnOnce(&CompliantDb) -> R) -> R {
        match self {
            Deploy::Single(db) => f(db.as_ref().expect("deployment open")),
            Deploy::Tenants { reg, names } => {
                f(reg.tenant(&names[i]).expect("tenant open").as_ref())
            }
            Deploy::Sharded(db) => f(db.as_ref().expect("deployment open").shards()[i].as_ref()),
        }
    }

    /// Latest committed value of `(rel, key)` in `domain`, routed through
    /// the shard map for sharded deployments.
    fn read_latest(
        &self,
        domain: usize,
        rel: RelId,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, String> {
        match self {
            Deploy::Single(db) => db
                .as_ref()
                .expect("deployment open")
                .engine()
                .read_latest(rel, key)
                .map_err(|e| format!("read_latest({key:02x?}) failed: {e}")),
            Deploy::Tenants { reg, names } => reg
                .tenant(&names[domain])
                .expect("tenant open")
                .engine()
                .read_latest(rel, key)
                .map_err(|e| format!("read_latest({key:02x?}) failed: {e}")),
            Deploy::Sharded(db) => {
                let db = db.as_ref().expect("deployment open");
                let s = db.map().shard_of(key);
                db.shards()[s]
                    .engine()
                    .read_latest(rel, key)
                    .map_err(|e| format!("shard read_latest({key:02x?}) failed: {e}"))
            }
        }
    }

    /// Full committed version history of `(rel, key)` in `domain`.
    fn version_history(
        &self,
        domain: usize,
        rel: RelId,
        key: &[u8],
    ) -> Result<Vec<(Timestamp, bool, Vec<u8>)>, String> {
        let via = |db: &CompliantDb| {
            db.version_history(rel, key)
                .map_err(|e| format!("version_history({key:02x?}) failed: {e}"))
        };
        match self {
            Deploy::Single(db) => via(db.as_ref().expect("deployment open")),
            Deploy::Tenants { reg, names } => {
                via(reg.tenant(&names[domain]).expect("tenant open").as_ref())
            }
            Deploy::Sharded(db) => {
                let db = db.as_ref().expect("deployment open");
                via(db.shards()[db.map().shard_of(key)].as_ref())
            }
        }
    }
}

/// One running campaign.
struct Run {
    seed: u64,
    rng: SplitMix64,
    clock: Arc<VirtualClock>,
    dir: TempDir,
    deploy: Deploy,
    mode: Mode,
    retention: Duration,
    ledger: RelId,
    events: RelId,
    models: Vec<DomainModel>,
    holds: BTreeMap<String, Hold>,
    /// Keys forged by landed `BackdateInsert` tampers, per domain — the
    /// harmless check must find no committed trace of them.
    forged: Vec<(usize, Vec<u8>)>,
    hold_seq: usize,
    val_seq: usize,
    trace: Vec<String>,
    // stats
    commits: usize,
    crashes: usize,
    sealed_audits: usize,
    vacuums: usize,
    shredded: usize,
    held_spared: usize,
    pages_migrated: usize,
    pages_remigrated: usize,
    holds_placed: usize,
    advanced_us: u64,
}

impl Run {
    fn new(seed: u64) -> Result<Run, String> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mode = if rng.gen_bool(0.5) { Mode::LogConsistent } else { Mode::HashOnRead };
        let config = ComplianceConfig {
            mode,
            regret_interval: Duration::from_mins(5),
            cache_pages: rng.gen_range(32..128usize),
            auditor_seed: [9u8; 32],
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        };
        // Retention on the events relation: 20–180 virtual days.
        let retention = Duration::from_mins(rng.gen_range(20..180u64) * 1440);
        let dir = TempDir::new(&format!("campaign-{seed}"));
        let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(40)));
        let deploy = match rng.gen_range(0..6u32) {
            0..=2 => Deploy::Single(Some(Box::new(
                CompliantDb::open(&dir.0, clock.clone(), config.clone())
                    .map_err(|e| format!("open failed: {e}"))?,
            ))),
            3..=4 => {
                let shards = if rng.gen_bool(0.25) { 3u32 } else { 2 };
                Deploy::Sharded(Some(
                    ShardedDb::open(&dir.0, clock.clone(), config.clone(), shards)
                        .map_err(|e| format!("sharded open failed: {e}"))?,
                ))
            }
            _ => {
                let reg = TenantRegistry::open(&dir.0, clock.clone(), config.clone())
                    .map_err(|e| format!("registry open failed: {e}"))?;
                let names = vec!["alpha".to_string(), "beta".to_string()];
                for n in &names {
                    reg.create_or_open(n).map_err(|e| format!("tenant {n} open failed: {e}"))?;
                }
                Deploy::Tenants { reg, names }
            }
        };
        // Schema: the same two relations on every engine, in the same
        // order, so the ids agree deployment-wide.
        let (ledger, events) = match &deploy {
            Deploy::Sharded(db) => {
                let db = db.as_ref().expect("deployment open");
                let l = db
                    .create_relation("ledger", SplitPolicy::KeyOnly)
                    .map_err(|e| format!("create ledger failed: {e}"))?;
                let ev = db
                    .create_relation("events", SplitPolicy::TimeSplit { threshold: 0.5 })
                    .map_err(|e| format!("create events failed: {e}"))?;
                db.set_retention("events", retention)
                    .map_err(|e| format!("set_retention failed: {e}"))?;
                (l, ev)
            }
            d => {
                let mut ids = None;
                for i in 0..d.engines() {
                    let got = d.with_engine(i, |db| -> Result<(RelId, RelId), String> {
                        let l = db
                            .create_relation("ledger", SplitPolicy::KeyOnly)
                            .map_err(|e| format!("create ledger failed: {e}"))?;
                        let ev = db
                            .create_relation("events", SplitPolicy::TimeSplit { threshold: 0.5 })
                            .map_err(|e| format!("create events failed: {e}"))?;
                        let txn = db.begin().map_err(|e| e.to_string())?;
                        db.set_retention(txn, "events", retention)
                            .map_err(|e| format!("set_retention failed: {e}"))?;
                        db.commit(txn).map_err(|e| e.to_string())?;
                        Ok((l, ev))
                    })?;
                    match ids {
                        None => ids = Some(got),
                        Some(prev) if prev != got => {
                            return Err(format!("relation ids diverge: {prev:?} vs {got:?}"))
                        }
                        Some(_) => {}
                    }
                }
                ids.expect("at least one engine")
            }
        };
        let domains = deploy.domains();
        Ok(Run {
            seed,
            rng,
            clock,
            dir,
            deploy,
            mode,
            retention,
            ledger,
            events,
            models: (0..domains).map(|_| DomainModel::default()).collect(),
            holds: BTreeMap::new(),
            forged: Vec::new(),
            hold_seq: 0,
            val_seq: 0,
            trace: Vec::new(),
            commits: 0,
            crashes: 0,
            sealed_audits: 0,
            vacuums: 0,
            shredded: 0,
            held_spared: 0,
            pages_migrated: 0,
            pages_remigrated: 0,
            holds_placed: 0,
            advanced_us: 0,
        })
    }

    fn err(&self, msg: impl fmt::Display) -> String {
        format!("seed {}: {msg}", self.seed)
    }

    // --- honest actions ---------------------------------------------------

    /// Whether an active hold covers an events key.
    fn held(&self, key: &[u8]) -> bool {
        self.holds.values().any(|h| h.covers("events", key))
    }

    fn fresh_val(&mut self, tag: &str) -> Vec<u8> {
        self.val_seq += 1;
        format!("{tag}-{:06}", self.val_seq).into_bytes()
    }

    /// A burst of 1–4 transactions against one domain: ledger writes,
    /// events writes/deletes, ~15 % aborted.
    fn workload_burst(&mut self) -> Result<(), String> {
        let domain = self.rng.gen_range(0..self.models.len() as u64) as usize;
        let txns = self.rng.gen_range(1..5usize);
        let mut committed = 0usize;
        for _ in 0..txns {
            // Draw ops first (deduped per key: one op per key per txn).
            let nops = self.rng.gen_range(1..4usize);
            let mut ops: BTreeMap<Vec<u8>, (RelId, Option<Vec<u8>>)> = BTreeMap::new();
            for _ in 0..nops {
                let r = self.rng.gen_range(0..100u32);
                if r < 50 {
                    let key = format!("l{:03}", self.rng.gen_range(0..40u32)).into_bytes();
                    let val = self.fresh_val("ledger");
                    ops.insert(key, (self.ledger, Some(val)));
                } else if r < 85 {
                    let key = format!("e{:03}", self.rng.gen_range(0..60u32)).into_bytes();
                    // Padded so overwrite traffic overflows leaves and the
                    // time-split policy has historical pages to produce.
                    let mut val = self.fresh_val("event");
                    val.resize(val.len() + 64, b'.');
                    ops.insert(key, (self.events, Some(val)));
                } else {
                    let key = format!("e{:03}", self.rng.gen_range(0..60u32)).into_bytes();
                    ops.insert(key, (self.events, None));
                }
            }
            let commit = self.rng.gen_bool(0.85);
            let ct = match &self.deploy {
                Deploy::Sharded(db) => {
                    let db = db.as_ref().expect("deployment open");
                    let mut dtx = db.begin();
                    for (key, (rel, val)) in &ops {
                        match val {
                            Some(v) => db
                                .write(&mut dtx, *rel, key, v)
                                .map_err(|e| self.err(format!("write failed: {e}")))?,
                            None => db
                                .delete(&mut dtx, *rel, key)
                                .map_err(|e| self.err(format!("delete failed: {e}")))?,
                        }
                    }
                    if commit {
                        Some(db.commit(dtx).map_err(|e| self.err(format!("commit failed: {e}")))?)
                    } else {
                        db.abort(dtx).map_err(|e| self.err(format!("abort failed: {e}")))?;
                        None
                    }
                }
                d => d
                    .with_engine(domain, |db| -> Result<Option<Timestamp>, String> {
                        let t = db.begin().map_err(|e| e.to_string())?;
                        for (key, (rel, val)) in &ops {
                            match val {
                                Some(v) => db.write(t, *rel, key, v).map_err(|e| e.to_string())?,
                                None => db.delete(t, *rel, key).map_err(|e| e.to_string())?,
                            }
                        }
                        if commit {
                            Ok(Some(db.commit(t).map_err(|e| e.to_string())?))
                        } else {
                            db.abort(t).map_err(|e| e.to_string())?;
                            Ok(None)
                        }
                    })
                    .map_err(|e| self.err(format!("workload txn failed: {e}")))?,
            };
            if let Some(ct) = ct {
                committed += 1;
                self.commits += 1;
                let model = &mut self.models[domain];
                for (key, (rel, val)) in ops {
                    if rel == self.ledger {
                        model
                            .ledger
                            .entry(key)
                            .or_default()
                            .push(val.expect("ledger is write-only"));
                    } else {
                        model.events.insert(key, EventState { val, ct });
                    }
                }
            }
        }
        self.trace.push(format!("workload d{domain}: {txns} txns, {committed} committed"));
        // Stamp behind roughly half the bursts: superseded-but-stamped
        // versions are what lets overflowing leaves time-split, which in
        // turn gives migration and shred cycles real pages to work on.
        if self.rng.gen_bool(0.5) {
            self.stamp_all()?;
        }
        Ok(())
    }

    /// Commits one single-op transaction against `domain` and updates the
    /// model.
    fn commit_one(&mut self, domain: usize, key: Vec<u8>, val: Vec<u8>) -> Result<(), String> {
        let ct = match &self.deploy {
            Deploy::Sharded(db) => {
                let db = db.as_ref().expect("deployment open");
                let mut dtx = db.begin();
                db.write(&mut dtx, self.events, &key, &val)
                    .map_err(|e| self.err(format!("storm write failed: {e}")))?;
                db.commit(dtx).map_err(|e| self.err(format!("storm commit failed: {e}")))?
            }
            d => {
                let events = self.events;
                d.with_engine(domain, |db| -> Result<Timestamp, String> {
                    let t = db.begin().map_err(|e| e.to_string())?;
                    db.write(t, events, &key, &val).map_err(|e| e.to_string())?;
                    db.commit(t).map_err(|e| e.to_string())
                })
                .map_err(|e| self.err(format!("storm txn failed: {e}")))?
            }
        };
        self.commits += 1;
        self.models[domain].events.insert(key, EventState { val: Some(val), ct });
        Ok(())
    }

    /// A revision storm: one decade of events keys rewritten three times,
    /// stamping between rounds. Co-located stamped-dead versions are what
    /// lets overflowing leaves time-split into migratable historical pages
    /// — without storms the workload is too thin for migration to ever
    /// have pages to move.
    fn revision_storm(&mut self) -> Result<(), String> {
        let domain = self.rng.gen_range(0..self.models.len() as u64) as usize;
        let decade = self.rng.gen_range(0..6u32);
        for _round in 0..3 {
            for i in 0..10u32 {
                let key = format!("e{:03}", decade * 10 + i).into_bytes();
                let mut val = self.fresh_val("storm");
                val.resize(val.len() + 64, b'.');
                self.commit_one(domain, key, val)?;
            }
            self.stamp_all()?;
        }
        self.trace.push(format!("revision storm d{domain} decade e{decade:02}x"));
        Ok(())
    }

    fn advance_clock(&mut self) {
        let big = self.rng.gen_bool(0.4);
        let mins = if big {
            // Months to years.
            self.rng.gen_range(30..900u64) * 1440
        } else {
            // Minutes to two days.
            self.rng.gen_range(1..2880u64)
        };
        let d = Duration::from_mins(mins);
        self.clock.advance(d);
        self.advanced_us += d.0;
        self.trace.push(format!("advance {}d{}h", mins / 1440, (mins % 1440) / 60));
    }

    fn tick_all(&mut self) -> Result<(), String> {
        match &self.deploy {
            Deploy::Sharded(db) => db
                .as_ref()
                .expect("deployment open")
                .tick()
                .map_err(|e| self.err(format!("tick failed: {e}"))),
            d => {
                for i in 0..d.engines() {
                    d.with_engine(i, |db| db.tick())
                        .map_err(|e| self.err(format!("tick failed: {e}")))?;
                }
                Ok(())
            }
        }
    }

    fn place_hold(&mut self) -> Result<(), String> {
        if self.holds.len() >= 3 {
            return Ok(());
        }
        self.hold_seq += 1;
        // A decade of keys (e.g. "e02" ⊇ e020..e029), or occasionally a
        // single-document hold.
        let prefix = if self.rng.gen_bool(0.2) {
            format!("e{:03}", self.rng.gen_range(0..60u32))
        } else {
            format!("e{:02}", self.rng.gen_range(0..6u32))
        };
        let hold = Hold {
            id: format!("hold-{}", self.hold_seq),
            rel_name: "events".into(),
            key_prefix: prefix.clone().into_bytes(),
        };
        match &self.deploy {
            Deploy::Sharded(db) => db
                .as_ref()
                .expect("deployment open")
                .place_hold(&hold)
                .map_err(|e| self.err(format!("place_hold failed: {e}")))?,
            d => {
                for i in 0..d.engines() {
                    d.with_engine(i, |db| -> ccdb_common::Result<()> {
                        let t = db.begin()?;
                        db.place_hold(t, &hold)?;
                        db.commit(t)?;
                        Ok(())
                    })
                    .map_err(|e| self.err(format!("place_hold failed: {e}")))?;
                }
            }
        }
        self.trace.push(format!("hold place {} prefix={prefix}", hold.id));
        self.holds.insert(hold.id.clone(), hold);
        self.holds_placed += 1;
        Ok(())
    }

    fn release_hold(&mut self) -> Result<(), String> {
        let Some(id) = self
            .holds
            .keys()
            .nth(self.rng.gen_range(0..self.holds.len().max(1) as u64) as usize)
            .cloned()
        else {
            return Ok(());
        };
        match &self.deploy {
            Deploy::Sharded(db) => db
                .as_ref()
                .expect("deployment open")
                .release_hold(&id)
                .map_err(|e| self.err(format!("release_hold failed: {e}")))?,
            d => {
                for i in 0..d.engines() {
                    d.with_engine(i, |db| -> ccdb_common::Result<()> {
                        let t = db.begin()?;
                        db.release_hold(t, &id)?;
                        db.commit(t)?;
                        Ok(())
                    })
                    .map_err(|e| self.err(format!("release_hold failed: {e}")))?;
                }
            }
        }
        self.trace.push(format!("hold release {id}"));
        self.holds.remove(&id);
        Ok(())
    }

    /// Re-migrate expired WORM pages, vacuum everywhere, then reconcile the
    /// events model against observed state: a key may only vanish if its
    /// latest version was expiry-eligible and unheld, and held keys must
    /// survive byte-for-byte.
    fn vacuum_cycle(&mut self) -> Result<(), String> {
        let (remigrated, report) = match &self.deploy {
            Deploy::Sharded(db) => {
                let db = db.as_ref().expect("deployment open");
                let rm = db.remigrate_expired().map_err(|e| self.err(format!("remigrate: {e}")))?;
                let rep = db.vacuum().map_err(|e| self.err(format!("vacuum: {e}")))?;
                (rm, rep)
            }
            d => {
                let mut rm = 0usize;
                let mut rep = ccdb_core::shred::VacuumReport::default();
                for i in 0..d.engines() {
                    let (a, b) = d
                        .with_engine(i, |db| -> ccdb_common::Result<_> {
                            let a = db.remigrate_expired()?;
                            let b = db.vacuum()?;
                            Ok((a, b))
                        })
                        .map_err(|e| self.err(format!("vacuum cycle failed: {e}")))?;
                    rm += a;
                    rep.shredded += b.shredded;
                    rep.held += b.held;
                    rep.revacuumed += b.revacuumed;
                }
                (rm, rep)
            }
        };
        self.vacuums += 1;
        self.shredded += report.shredded;
        self.held_spared += report.held;
        self.pages_remigrated += remigrated;
        self.trace.push(format!(
            "vacuum: shredded {} held {} remigrated {remigrated}",
            report.shredded, report.held
        ));
        // Reconcile and check the shred contract against the model.
        let now = self.clock.now();
        for domain in 0..self.models.len() {
            let mut gone: Vec<Vec<u8>> = Vec::new();
            let entries: Vec<(Vec<u8>, EventState)> =
                self.models[domain].events.iter().map(|(k, s)| (k.clone(), s.clone())).collect();
            for (key, state) in entries {
                let got = self.deploy.read_latest(domain, self.events, &key)?;
                match (&got, &state.val) {
                    (Some(g), Some(v)) if g == v => {}
                    (None, None) => {}
                    (None, Some(_)) => {
                        let expired = state.ct.saturating_add(self.retention) <= now;
                        if !expired {
                            return Err(self.err(format!(
                                "vacuum shredded unexpired key {:?} (ct {:?}, now {now:?})",
                                String::from_utf8_lossy(&key),
                                state.ct
                            )));
                        }
                        if self.held(&key) {
                            return Err(self.err(format!(
                                "vacuum shredded HELD key {:?} (active holds: {:?})",
                                String::from_utf8_lossy(&key),
                                self.holds.keys().collect::<Vec<_>>()
                            )));
                        }
                        gone.push(key);
                    }
                    _ => {
                        return Err(self.err(format!(
                            "post-vacuum state mismatch on key {:?}: model {:?}, disk {:?}",
                            String::from_utf8_lossy(&key),
                            state.val.as_ref().map(|v| String::from_utf8_lossy(v).into_owned()),
                            got.as_ref().map(|v| String::from_utf8_lossy(v).into_owned()),
                        )))
                    }
                }
            }
            for key in gone {
                self.models[domain].events.remove(&key);
            }
        }
        Ok(())
    }

    fn migrate(&mut self) -> Result<(), String> {
        let report = match &self.deploy {
            Deploy::Sharded(db) => db
                .as_ref()
                .expect("deployment open")
                .migrate_to_worm(self.events)
                .map_err(|e| self.err(format!("migrate failed: {e}")))?,
            d => {
                let mut rep = ccdb_core::migrate::MigrationReport::default();
                for i in 0..d.engines() {
                    let r = d
                        .with_engine(i, |db| db.migrate_to_worm(self.events))
                        .map_err(|e| self.err(format!("migrate failed: {e}")))?;
                    rep.pages_migrated += r.pages_migrated;
                    rep.tuples_migrated += r.tuples_migrated;
                }
                rep
            }
        };
        self.pages_migrated += report.pages_migrated;
        self.trace.push(format!("migrate: {} pages to WORM", report.pages_migrated));
        Ok(())
    }

    /// A mid-campaign sealing audit; must be clean (contract point 3).
    fn sealing_audit(&mut self) -> Result<(), String> {
        match &self.deploy {
            Deploy::Sharded(db) => {
                let a = db
                    .as_ref()
                    .expect("deployment open")
                    .audit()
                    .map_err(|e| self.err(format!("sealing audit errored: {e}")))?;
                if !a.is_clean() {
                    return Err(
                        self.err(format!("honest sealing audit dirty: {:?}", a.all_violations()))
                    );
                }
            }
            d => {
                for i in 0..d.engines() {
                    let report = d
                        .with_engine(i, |db| db.audit())
                        .map_err(|e| self.err(format!("sealing audit errored: {e}")))?;
                    if !report.is_clean() {
                        return Err(self.err(format!(
                            "honest sealing audit dirty on engine {i}: {:?}",
                            report.violations
                        )));
                    }
                }
            }
        }
        self.sealed_audits += 1;
        self.trace.push("sealing audit: clean".into());
        Ok(())
    }

    fn crash(&mut self) -> Result<(), String> {
        match &mut self.deploy {
            Deploy::Single(slot) => {
                let db = slot.take().expect("deployment open");
                *slot = Some(Box::new(
                    db.crash_and_recover()
                        .map_err(|e| format!("seed {}: recovery failed: {e}", self.seed))?,
                ));
                self.trace.push("crash+recover (whole)".into());
            }
            Deploy::Sharded(slot) => {
                let whole = self.rng.gen_bool(0.4);
                if whole {
                    let db = slot.take().expect("deployment open");
                    *slot = Some(db.crash_and_recover().map_err(|e| {
                        format!("seed {}: deployment recovery failed: {e}", self.seed)
                    })?);
                    self.trace.push("crash+recover (whole deployment)".into());
                } else {
                    let db = slot.as_mut().expect("deployment open");
                    let victim = self.rng.gen_range(0..db.shards().len() as u64) as usize;
                    db.crash_shard(victim).map_err(|e| {
                        format!("seed {}: shard {victim} recovery failed: {e}", self.seed)
                    })?;
                    self.trace.push(format!("crash+recover shard {victim}"));
                }
            }
            // Tenant registries hold shared handles; crashing one is a
            // registry-level restart this campaign does not model.
            Deploy::Tenants { .. } => return Ok(()),
        }
        self.crashes += 1;
        Ok(())
    }

    fn stamp_all(&mut self) -> Result<(), String> {
        for i in 0..self.deploy.engines() {
            self.deploy
                .with_engine(i, |db| db.engine().run_stamper())
                .map_err(|e| self.err(format!("stamper failed: {e}")))?;
        }
        Ok(())
    }

    /// Flush everything and drop caches, so the on-disk file is
    /// authoritative and Mala's edits bite.
    fn settle(&mut self) -> Result<(), String> {
        self.stamp_all()?;
        for i in 0..self.deploy.engines() {
            self.deploy
                .with_engine(i, |db| db.engine().clear_cache())
                .map_err(|e| self.err(format!("clear_cache failed: {e}")))?;
        }
        Ok(())
    }

    // --- tamper phase -----------------------------------------------------

    /// Picks a ledger key for tampering; for sharded deployments, one
    /// routed to the target shard so the attack has bytes to find.
    fn tamper_key(&mut self, target: &MalaTarget) -> Option<Vec<u8>> {
        let keys: Vec<Vec<u8>> = match (&self.deploy, target) {
            (Deploy::Sharded(db), MalaTarget::Shard(s)) => {
                let db = db.as_ref().expect("deployment open");
                self.models[0]
                    .ledger
                    .keys()
                    .filter(|k| db.map().shard_of(k) == *s as usize)
                    .cloned()
                    .collect()
            }
            (Deploy::Tenants { names, .. }, MalaTarget::Tenant(name)) => {
                let domain = names.iter().position(|n| n == name).expect("known tenant");
                self.models[domain].ledger.keys().cloned().collect()
            }
            _ => self.models[0].ledger.keys().cloned().collect(),
        };
        if keys.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..keys.len() as u64) as usize;
        Some(keys[i].clone())
    }

    fn draw_tamper(&mut self, target: &MalaTarget, mala: &Mala) -> Option<TamperAction> {
        for _ in 0..8 {
            let action = match self.rng.gen_range(0..8u32) {
                0 => self.tamper_key(target).map(|key| TamperAction::AlterTuple {
                    key,
                    new_value: b"tampered-by-mala".to_vec(),
                }),
                1 => self.tamper_key(target).map(|key| TamperAction::DeleteTuple { key }),
                2 => Some(TamperAction::BackdateInsert {
                    rel: self.ledger,
                    key: format!("lz{:03}", self.rng.gen_range(0..999u32)).into_bytes(),
                    value: b"forged-entry".to_vec(),
                    fake_time: Timestamp(self.rng.gen_range(1..1000u64)),
                }),
                3 => Some(TamperAction::SwapLeafEntries),
                4 => Some(TamperAction::CorruptSeparator),
                5 => {
                    let len = std::fs::metadata(mala.db_path()).map(|m| m.len()).unwrap_or(0);
                    if len == 0 {
                        None
                    } else {
                        Some(TamperAction::FlipByte {
                            offset: self.rng.gen_range(0..len),
                            mask: self.rng.gen_range(1..=255u8),
                            fix_checksum: true,
                        })
                    }
                }
                6 => self.tamper_key(target).map(|key| TamperAction::RevertRoundTrip { key }),
                _ => {
                    // WAL wiping is modeled together with a crash, which
                    // this harness only drives on single deployments.
                    if matches!(self.deploy, Deploy::Single(_)) {
                        Some(TamperAction::WipeWal)
                    } else {
                        None
                    }
                }
            };
            if action.is_some() {
                return action;
            }
        }
        None
    }

    /// The tamper phase: 0–3 catalogued actions against seeded engines.
    /// Returns how many were drawn and how many landed, plus whether a WAL
    /// wipe requires the follow-up crash.
    fn tamper_phase(&mut self) -> Result<(usize, usize), String> {
        let drawn_count =
            if self.rng.gen_bool(0.35) { 0 } else { self.rng.gen_range(1..4u32) as usize };
        let mut landed = 0usize;
        let mut wal_wiped = false;
        let targets = self.deploy.targets();
        for _ in 0..drawn_count {
            let target = targets[self.rng.gen_range(0..targets.len() as u64) as usize].clone();
            let mala = Mala::for_deployment(&self.dir.0, &target);
            let Some(action) = self.draw_tamper(&target, &mala) else {
                self.trace.push(format!("tamper {target:?}: no viable action"));
                continue;
            };
            let hit = mala
                .apply(&action)
                .map_err(|e| self.err(format!("tamper {action:?} errored: {e}")))?;
            if hit {
                landed += 1;
                wal_wiped |= matches!(action, TamperAction::WipeWal);
                if let TamperAction::BackdateInsert { key, .. } = &action {
                    let domain = match (&self.deploy, &target) {
                        (Deploy::Tenants { names, .. }, MalaTarget::Tenant(name)) => {
                            names.iter().position(|n| n == name).expect("known tenant")
                        }
                        _ => 0,
                    };
                    self.forged.push((domain, key.clone()));
                }
            }
            self.trace.push(format!("tamper {target:?}: {action:?} landed={hit}"));
        }
        if wal_wiped {
            // A wiped WAL only matters across a restart; Mala forces one.
            self.crash()?;
        }
        Ok((drawn_count, landed))
    }

    // --- verdict ----------------------------------------------------------

    /// Runs the three auditors over one engine and enforces verdict
    /// identity. Returns the agreed violations (empty = clean).
    fn engine_verdict(&self, i: usize) -> Result<Vec<String>, String> {
        self.deploy.with_engine(i, |db| {
            let serial = db
                .audit_outcome_with(AuditConfig::serial())
                .map_err(|e| self.err(format!("engine {i}: serial audit errored: {e}")))?;
            let par = db
                .audit_outcome_with(AuditConfig::default().with_threads(2))
                .map_err(|e| self.err(format!("engine {i}: parallel audit errored: {e}")))?;
            if serial.report.violations != par.report.violations {
                return Err(self.err(format!(
                    "VERDICT SPLIT engine {i}: serial {:?} vs parallel {:?}",
                    serial.report.violations, par.report.violations
                )));
            }
            if serial.report.forensics != par.report.forensics {
                return Err(self.err(format!("VERDICT SPLIT engine {i}: forensics diverge")));
            }
            if serial.tuple_hash != par.tuple_hash {
                return Err(
                    self.err(format!("VERDICT SPLIT engine {i}: completeness hash diverges"))
                );
            }
            let mut stream = db
                .stream_auditor()
                .map_err(|e| self.err(format!("engine {i}: stream attach errored: {e}")))?;
            let alert = stream
                .poll_deep(db)
                .map_err(|e| self.err(format!("engine {i}: stream poll errored: {e}")))?;
            match (&alert, serial.report.is_clean()) {
                (None, true) => {}
                (Some(a), false) => {
                    if a.violations != serial.report.violations {
                        return Err(self.err(format!(
                            "VERDICT SPLIT engine {i}: stream {:?} vs batch {:?}",
                            a.violations, serial.report.violations
                        )));
                    }
                }
                (Some(a), true) => {
                    return Err(self.err(format!(
                        "VERDICT SPLIT engine {i}: streaming false alarm {:?}",
                        a.violations
                    )))
                }
                (None, false) => {
                    return Err(self.err(format!(
                        "VERDICT SPLIT engine {i}: streaming daemon missed {:?}",
                        serial.report.violations
                    )))
                }
            }
            Ok(serial.report.violations.iter().map(|v| format!("{v:?}")).collect())
        })
    }

    /// The full three-auditor deployment verdict: per-engine identity plus
    /// (for sharded deployments) the cross-shard decision join.
    fn verdict(&mut self) -> Result<Vec<String>, String> {
        let mut violations: Vec<String> = Vec::new();
        for i in 0..self.deploy.engines() {
            violations.extend(self.engine_verdict(i)?);
        }
        if let Deploy::Sharded(db) = &self.deploy {
            let db = db.as_ref().expect("deployment open");
            let (_, cross) = db
                .audit_dry(AuditConfig::serial())
                .map_err(|e| self.err(format!("cross-shard join errored: {e}")))?;
            violations.extend(cross.iter().map(|v| format!("cross-shard {v:?}")));
        }
        self.trace.push(format!(
            "verdict: {} ({} violations)",
            if violations.is_empty() { "clean" } else { "DETECTED" },
            violations.len()
        ));
        Ok(violations)
    }

    /// The harmless check: observable state still matches the honest model
    /// — full version history for the ledger, latest state for events.
    fn check_state(&self) -> Result<(), String> {
        for (domain, key) in &self.forged {
            let hist = self.deploy.version_history(*domain, self.ledger, key)?;
            if !hist.is_empty() {
                return Err(self.err(format!(
                    "forged key {:?} is visible with {} version(s)",
                    String::from_utf8_lossy(key),
                    hist.len()
                )));
            }
        }
        for (domain, model) in self.models.iter().enumerate() {
            for (key, writes) in &model.ledger {
                let hist = self.deploy.version_history(domain, self.ledger, key)?;
                let got: Vec<&[u8]> = hist.iter().map(|(_, _, v)| v.as_slice()).collect();
                let want: Vec<&[u8]> = writes.iter().map(|v| v.as_slice()).collect();
                if got != want || hist.iter().any(|(_, eol, _)| *eol) {
                    return Err(self.err(format!(
                        "ledger history diverged on {:?}: {} committed writes, disk has {:?}",
                        String::from_utf8_lossy(key),
                        want.len(),
                        hist.iter()
                            .map(|(_, eol, v)| format!(
                                "{}{}",
                                String::from_utf8_lossy(v),
                                if *eol { " (eol)" } else { "" }
                            ))
                            .collect::<Vec<_>>(),
                    )));
                }
            }
            for (key, state) in &model.events {
                let got = self.deploy.read_latest(domain, self.events, key)?;
                if got != state.val {
                    return Err(self.err(format!(
                        "events state diverged on {:?}: model {:?}, disk {:?}",
                        String::from_utf8_lossy(key),
                        state.val.as_ref().map(|v| String::from_utf8_lossy(v).into_owned()),
                        got.as_ref().map(|v| String::from_utf8_lossy(v).into_owned()),
                    )));
                }
            }
        }
        Ok(())
    }

    // --- the schedule -----------------------------------------------------

    fn execute(&mut self) -> Result<CampaignOutcome, String> {
        // Honest phase: a seeded interleaving of workload, time, lifecycle
        // actions, crashes, and sealing audits.
        let steps = self.rng.gen_range(12..30usize);
        for _ in 0..steps {
            match self.rng.gen_range(0..16u32) {
                0..=4 => self.workload_burst()?,
                5 | 6 => {
                    self.advance_clock();
                    self.tick_all()?;
                }
                7 => self.place_hold()?,
                8 => {
                    if !self.holds.is_empty() {
                        self.release_hold()?;
                    }
                }
                9 | 10 => self.vacuum_cycle()?,
                11 => self.migrate()?,
                12 => {
                    if self.sealed_audits < 3 {
                        self.sealing_audit()?;
                    }
                }
                13 => self.crash()?,
                14 => self.revision_storm()?,
                _ => self.stamp_all()?,
            }
        }
        // Make sure there is real state to attack and to check.
        if self.commits == 0 {
            self.workload_burst()?;
        }
        // Tamper phase against the settled on-disk state.
        self.settle()?;
        let (drawn, landed) = self.tamper_phase()?;

        // Verdict: all three auditors, verdict-identical.
        let violations = self.verdict()?;
        let detected = !violations.is_empty();
        let tampered = landed > 0;

        // The paper's invariant, enforced.
        if !tampered && detected {
            return Err(
                self.err(format!("FALSE ALERT: tamper-free campaign ended dirty: {violations:?}"))
            );
        }
        if !detected {
            // Clean verdict ⇒ the campaign must be harmless: observable
            // state still matches the honest model (this covers held-tuple
            // survival too — held keys keep their model values).
            self.check_state().map_err(|e| {
                if tampered {
                    format!("{e} [UNDETECTED EFFECTIVE TAMPER — verdict was clean]")
                } else {
                    e
                }
            })?;
        }
        Ok(CampaignOutcome {
            seed: self.seed,
            deployment: self.deploy.kind(),
            mode: self.mode,
            commits: self.commits,
            crashes: self.crashes,
            sealed_audits: self.sealed_audits,
            vacuums: self.vacuums,
            shredded: self.shredded,
            held_spared: self.held_spared,
            pages_migrated: self.pages_migrated,
            pages_remigrated: self.pages_remigrated,
            holds_placed: self.holds_placed,
            virtual_micros_advanced: self.advanced_us,
            tampers_drawn: drawn,
            tampers_landed: landed,
            detected,
            violations,
            trace: self.trace.clone(),
        })
    }
}

/// Runs one deterministic campaign. Any broken contract point returns a
/// [`CampaignFailure`] carrying the seed and the structured action trace.
pub fn run_campaign_schedule(seed: u64) -> Result<CampaignOutcome, CampaignFailure> {
    let mut run = match Run::new(seed) {
        Ok(r) => r,
        Err(error) => {
            return Err(CampaignFailure {
                seed,
                error: format!("seed {seed}: {error}"),
                trace: Vec::new(),
            })
        }
    };
    match run.execute() {
        Ok(out) => Ok(out),
        Err(error) => Err(CampaignFailure { seed, error, trace: run.trace.clone() }),
    }
}

/// Runs campaigns for `seeds`, failing fast with the first violated seed.
/// The outcome aggregate lets callers assert the campaign exercised real
/// tampering, shredding, holds, and years of virtual time rather than
/// vacuously passing.
pub fn run_campaign(
    seeds: impl IntoIterator<Item = u64>,
) -> Result<Vec<CampaignOutcome>, CampaignFailure> {
    let mut out = Vec::new();
    for seed in seeds {
        out.push(run_campaign_schedule(seed)?);
    }
    Ok(out)
}
