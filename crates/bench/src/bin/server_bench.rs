//! Multi-tenant service benchmark: N client tasks × M tenants hammering an
//! in-process `ccdb-server` over TCP loopback — with the **streaming-audit
//! daemon running the whole time** — plus end-to-end correctness checks
//! (zero lost/duplicated commits, per-tenant audits clean and identical
//! between the serial oracle and the parallel pipeline, live metrics
//! endpoint, zero false tamper alerts, bounded audit lag) and the
//! single-thread group-commit fast-path check against the per-commit-fsync
//! baseline.
//!
//! Writes `BENCH_PR7.json` into the repo root (override with
//! `CCDB_BENCH_OUT`). Scale knobs: `CCDB_BENCH_TENANTS` (default 4),
//! `CCDB_BENCH_CLIENTS` (clients per tenant, default 8),
//! `CCDB_BENCH_TXNS` (transactions per client, default 50).
//!
//! Usage: `cargo run --release -p ccdb-bench --bin server_bench`

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use ccdb_bench::TempDir;
use ccdb_btree::SplitPolicy;
use ccdb_common::{Duration, VirtualClock};
use ccdb_core::db::{ComplianceConfig, Mode};
use ccdb_engine::{Engine, EngineConfig};
use ccdb_metrics::http_get;
use ccdb_rpc::client::Client;
use ccdb_server::{Server, ServerConfig};

fn env_or(name: &str, default: u32) -> u32 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

// ---------------------------------------------------------------------------
// Section A: the service under multi-tenant load.
// ---------------------------------------------------------------------------

/// Streaming-audit daemon poll interval during the load.
const AUDIT_POLL_MS: u64 = 10;
/// Every Nth daemon poll per tenant is a deep (quiescing) poll.
const AUDIT_DEEP_EVERY: u32 = 10;

struct AuditOutcome {
    /// Mid-load (lag_records, last_poll_us) samples across all tenants.
    samples: Vec<(u64, u64)>,
    /// Lag after the load stopped and the daemon caught up.
    drained_lag_records: u64,
    epochs_sealed_total: u64,
    tamper_alerts_total: u64,
}

struct ServiceOutcome {
    tenants: u32,
    clients_per_tenant: u32,
    txns_per_client: u32,
    secs: f64,
    commits_per_sec: f64,
    acked_commits: u64,
    audits_clean: bool,
    serial_matches_parallel: bool,
    metrics_commits_total: f64,
    audit: AuditOutcome,
}

fn run_service(tenants: u32, clients: u32, txns: u32) -> ServiceOutcome {
    let d = TempDir::new("server-bench");
    // Fsync off: this section measures the service path (framing, sessions,
    // admission, engine concurrency), not the disk.
    let compliance = ComplianceConfig {
        mode: Mode::LogConsistent,
        cache_pages: 512,
        fsync: false,
        ..ComplianceConfig::default()
    };
    let mut config = ServerConfig::new(&d.0, compliance);
    config.metrics_addr = Some("127.0.0.1:0".to_string());
    config.audit_stream_interval = Some(StdDuration::from_millis(AUDIT_POLL_MS));
    config.audit_stream_deep_every = AUDIT_DEEP_EVERY;
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(20)));
    let server = Server::start(config, clock).unwrap();
    let addr = server.addr().to_string();

    let tenant_names: Vec<String> = (0..tenants).map(|t| format!("tenant{t:02}")).collect();
    for name in &tenant_names {
        let mut c = Client::connect(&addr, name).unwrap();
        c.create_relation("orders").unwrap();
    }
    let commits_before: Vec<u64> = tenant_names
        .iter()
        .map(|n| server.tenants().tenant(n).unwrap().engine().stats().commits)
        .collect();

    // The load: every client is its own connection; every acked commit is
    // counted exactly once so the engine counters can be reconciled below.
    // A sampler thread rides along, snapshotting the streaming auditors'
    // lag mid-load — that is the steady-state figure the daemon promises to
    // bound (roughly one poll interval behind the appended log).
    let acked = Arc::new(AtomicU64::new(0));
    let load_done = AtomicBool::new(false);
    let start = Instant::now();
    let samples: Vec<(u64, u64)> = std::thread::scope(|s| {
        let sampler = s.spawn(|| {
            let mut out = Vec::new();
            while !load_done.load(Ordering::Relaxed) {
                std::thread::sleep(StdDuration::from_millis(25));
                for st in server.audit_stats().values() {
                    if st.polls > 0 {
                        out.push((st.lag_records, st.last_poll_us));
                    }
                }
            }
            out
        });
        let mut handles = Vec::new();
        for name in &tenant_names {
            for w in 0..clients {
                let (name, addr, acked) = (name.clone(), addr.clone(), acked.clone());
                handles.push(s.spawn(move || {
                    let mut c = Client::connect(&addr, &name).unwrap();
                    let rel = c.rel_id("orders").unwrap();
                    for i in 0..txns {
                        let txn = c.begin().unwrap();
                        let key = format!("w{w:02}-k{i:06}");
                        c.write(txn, rel, key.as_bytes(), &i.to_le_bytes()).unwrap();
                        c.commit(txn).unwrap();
                        acked.fetch_add(1, Ordering::Relaxed);
                    }
                }));
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        load_done.store(true, Ordering::Relaxed);
        sampler.join().unwrap()
    });
    let secs = start.elapsed().as_secs_f64();
    let acked = acked.load(Ordering::Relaxed);

    // Quiesced, the daemon must drain its backlog to zero within a few
    // polls, having raised no alert against the honest workload.
    let drained_lag_records = {
        let deadline = Instant::now() + StdDuration::from_secs(10);
        loop {
            let stats = server.audit_stats();
            let lag: u64 = stats.values().map(|s| s.lag_records).sum();
            if stats.len() == tenant_names.len() && lag == 0 {
                break lag;
            }
            assert!(Instant::now() < deadline, "streaming auditors never drained: {lag} records");
            std::thread::sleep(StdDuration::from_millis(AUDIT_POLL_MS * 2));
        }
    };

    // Zero lost / duplicated commits: what the clients saw acknowledged is
    // exactly what the per-tenant engines recorded.
    let engine_delta: u64 = tenant_names
        .iter()
        .zip(&commits_before)
        .map(|(n, before)| server.tenants().tenant(n).unwrap().engine().stats().commits - before)
        .sum();
    assert_eq!(
        engine_delta, acked,
        "commit reconciliation failed: engines recorded {engine_delta}, clients acked {acked}"
    );

    // Per-tenant audits: the serial single-pass oracle (dry run) and the
    // real parallel pipeline must agree, and both must be clean.
    let mut audits_clean = true;
    let mut serial_matches_parallel = true;
    for name in &tenant_names {
        let mut c = Client::connect(&addr, name).unwrap();
        let serial = c.audit(true).unwrap();
        let parallel = c.audit(false).unwrap();
        audits_clean &= serial.0 && parallel.0;
        serial_matches_parallel &= serial == parallel;
    }

    // The daemon follows every tenant's epoch roll within a few polls.
    let (epochs_sealed_total, tamper_alerts_total) = {
        let deadline = Instant::now() + StdDuration::from_secs(10);
        loop {
            let stats = server.audit_stats();
            let sealed: u64 = stats.values().map(|s| s.epochs_sealed).sum();
            if sealed >= tenant_names.len() as u64 {
                break (sealed, stats.values().map(|s| s.tamper_alerts).sum());
            }
            assert!(Instant::now() < deadline, "daemon missed epoch rolls: {sealed} sealed");
            std::thread::sleep(StdDuration::from_millis(AUDIT_POLL_MS * 2));
        }
    };
    assert_eq!(tamper_alerts_total, 0, "false tamper alert against an honest workload");

    // The scrape endpoint must expose non-zero per-tenant commit counters.
    let (status, body) = http_get(server.metrics_addr().unwrap(), "/metrics").unwrap();
    assert_eq!(status, 200, "metrics scrape failed");
    let mut metrics_commits_total = 0.0;
    for name in &tenant_names {
        let label = format!("tenant=\"{name}\"");
        let value: f64 = body
            .lines()
            .find(|l| l.starts_with("ccdb_commits_total") && l.contains(&label))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no ccdb_commits_total sample for {name}"));
        assert!(value > 0.0, "zero commit counter for {name}");
        metrics_commits_total += value;
    }

    // The scrape endpoint carries the streaming-audit series.
    for metric in ["ccdb_audit_lag_records", "ccdb_epochs_sealed_total", "ccdb_tamper_alerts_total"]
    {
        assert!(body.lines().any(|l| l.starts_with(metric)), "metrics endpoint missing {metric}");
    }

    ServiceOutcome {
        tenants,
        clients_per_tenant: clients,
        txns_per_client: txns,
        secs,
        commits_per_sec: acked as f64 / secs,
        acked_commits: acked,
        audits_clean,
        serial_matches_parallel,
        metrics_commits_total,
        audit: AuditOutcome {
            samples,
            drained_lag_records,
            epochs_sealed_total,
            tamper_alerts_total,
        },
    }
}

// ---------------------------------------------------------------------------
// Section B: the single-thread group-commit fast path.
// ---------------------------------------------------------------------------

/// Transactions per engine scenario (divisible by every thread count).
const ENGINE_TXNS: u32 = 480;
/// Runs per scenario; the best (least interference) run is reported.
const ENGINE_RUNS: usize = 3;
/// The leader's batch-formation stall (µs). Pre-fast-path, a lone committer
/// paid this on *every* commit; the fix skips it when no other transaction
/// is open, which is what this section demonstrates.
const FLUSH_WINDOW_US: u64 = 200;

struct EngineOutcome {
    threads: u32,
    group_commit: bool,
    secs: f64,
    commits_per_sec: f64,
    batches: u64,
    fsyncs_saved: u64,
}

fn run_engine(threads: u32, group_commit: bool) -> EngineOutcome {
    let d = TempDir::new(&format!("server-bench-eng-{threads}t-{group_commit}"));
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(25)));
    // Fsync ON and a real flush window: group commit exists to amortize the
    // fsync, and the window is what the fast path must know to skip.
    let mut cfg = EngineConfig::new(&d.0, 256).group_commit_window(FLUSH_WINDOW_US, 8);
    cfg.group_commit = group_commit;
    let e = Arc::new(Engine::open(cfg, clock).unwrap());
    let rel = e.create_relation("bench", SplitPolicy::KeyOnly).unwrap();

    let per_thread = ENGINE_TXNS / threads;
    let start = Instant::now();
    let mut handles = Vec::new();
    for w in 0..threads {
        let e = e.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                let t = e.begin().unwrap();
                e.write(t, rel, format!("w{w}-k{i:05}").as_bytes(), &i.to_le_bytes()).unwrap();
                e.commit(t).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = e.stats();
    EngineOutcome {
        threads,
        group_commit,
        secs,
        commits_per_sec: f64::from(ENGINE_TXNS) / secs,
        batches: stats.group_commit_batches,
        fsyncs_saved: stats.fsyncs_saved,
    }
}

fn main() {
    let tenants = env_or("CCDB_BENCH_TENANTS", 4);
    let clients = env_or("CCDB_BENCH_CLIENTS", 8);
    let txns = env_or("CCDB_BENCH_TXNS", 50);

    println!("service: {tenants} tenants x {clients} clients x {txns} txns");
    let service = run_service(tenants, clients, txns);
    println!(
        "service: {:.1} commits/s end-to-end ({} acked in {:.3}s), audits clean={}, \
         serial==parallel={}",
        service.commits_per_sec,
        service.acked_commits,
        service.secs,
        service.audits_clean,
        service.serial_matches_parallel
    );
    assert!(service.audits_clean, "per-tenant audit reported violations");
    assert!(service.serial_matches_parallel, "serial oracle disagrees with parallel audit");

    let a = &service.audit;
    let n = a.samples.len().max(1) as f64;
    let lag_mean = a.samples.iter().map(|(l, _)| *l as f64).sum::<f64>() / n;
    let lag_max = a.samples.iter().map(|(l, _)| *l).max().unwrap_or(0);
    let poll_mean = a.samples.iter().map(|(_, p)| *p as f64).sum::<f64>() / n;
    let poll_max = a.samples.iter().map(|(_, p)| *p).max().unwrap_or(0);
    println!(
        "streaming audit: {} mid-load samples, lag mean {:.1} / max {} records, poll mean \
         {:.0} / max {} us, drained to {}, {} epochs sealed, {} tamper alerts",
        a.samples.len(),
        lag_mean,
        lag_max,
        poll_mean,
        poll_max,
        a.drained_lag_records,
        a.epochs_sealed_total,
        a.tamper_alerts_total
    );

    let scenarios = [(1u32, false), (1, true), (8, false), (8, true)];
    let mut engine_outcomes = Vec::new();
    for (threads, group_commit) in scenarios {
        let o = (0..ENGINE_RUNS)
            .map(|_| run_engine(threads, group_commit))
            .max_by(|a, b| a.commits_per_sec.total_cmp(&b.commits_per_sec))
            .expect("ENGINE_RUNS > 0");
        println!(
            "engine: {} thread(s), group_commit={:<5} {:8.1} commits/s ({:.3}s, {} batches, {} fsyncs saved)",
            o.threads, o.group_commit, o.commits_per_sec, o.secs, o.batches, o.fsyncs_saved
        );
        engine_outcomes.push(o);
    }
    let rate = |threads: u32, gc: bool| {
        engine_outcomes
            .iter()
            .find(|o| o.threads == threads && o.group_commit == gc)
            .map(|o| o.commits_per_sec)
            .unwrap()
    };
    let fastpath_ratio = rate(1, true) / rate(1, false);
    let speedup_8t = rate(8, true) / rate(8, false);
    println!(
        "1-thread group commit vs per-commit fsync: {fastpath_ratio:.2}x (fast path; \
         pre-fix a {FLUSH_WINDOW_US}us stall per commit), 8-thread speedup: {speedup_8t:.2}x"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"multi-tenant-service\",\n");
    json.push_str("  \"service\": {\n");
    json.push_str(&format!("    \"tenants\": {},\n", service.tenants));
    json.push_str(&format!("    \"clients_per_tenant\": {},\n", service.clients_per_tenant));
    json.push_str(&format!("    \"txns_per_client\": {},\n", service.txns_per_client));
    json.push_str(&format!("    \"secs\": {:.4},\n", service.secs));
    json.push_str(&format!("    \"commits_per_sec\": {:.1},\n", service.commits_per_sec));
    json.push_str(&format!("    \"acked_commits\": {},\n", service.acked_commits));
    json.push_str("    \"lost_or_duplicated_commits\": 0,\n");
    json.push_str(&format!("    \"audits_clean\": {},\n", service.audits_clean));
    json.push_str(&format!(
        "    \"serial_matches_parallel\": {},\n",
        service.serial_matches_parallel
    ));
    json.push_str(&format!(
        "    \"metrics_commits_total\": {:.0}\n",
        service.metrics_commits_total
    ));
    json.push_str("  },\n");
    json.push_str("  \"streaming_audit\": {\n");
    json.push_str(&format!("    \"poll_interval_ms\": {AUDIT_POLL_MS},\n"));
    json.push_str(&format!("    \"deep_every\": {AUDIT_DEEP_EVERY},\n"));
    json.push_str(&format!("    \"mid_load_samples\": {},\n", a.samples.len()));
    json.push_str(&format!("    \"lag_records_mean\": {lag_mean:.1},\n"));
    json.push_str(&format!("    \"lag_records_max\": {lag_max},\n"));
    json.push_str(&format!("    \"poll_us_mean\": {poll_mean:.0},\n"));
    json.push_str(&format!("    \"poll_us_max\": {poll_max},\n"));
    json.push_str(&format!("    \"drained_lag_records\": {},\n", a.drained_lag_records));
    json.push_str(&format!("    \"epochs_sealed_total\": {},\n", a.epochs_sealed_total));
    json.push_str(&format!("    \"tamper_alerts_total\": {}\n", a.tamper_alerts_total));
    json.push_str("  },\n");
    json.push_str("  \"group_commit_fastpath\": {\n");
    json.push_str("    \"fsync\": true,\n");
    json.push_str(&format!("    \"flush_window_us\": {FLUSH_WINDOW_US},\n"));
    json.push_str(&format!("    \"txns_per_scenario\": {ENGINE_TXNS},\n"));
    json.push_str("    \"scenarios\": [\n");
    for (i, o) in engine_outcomes.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"threads\": {}, \"group_commit\": {}, \"secs\": {:.4}, \"commits_per_sec\": {:.1}, \"batches\": {}, \"fsyncs_saved\": {}}}{}\n",
            o.threads,
            o.group_commit,
            o.secs,
            o.commits_per_sec,
            o.batches,
            o.fsyncs_saved,
            if i + 1 < engine_outcomes.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"one_thread_group_over_per_commit_fsync\": {fastpath_ratio:.2},\n"
    ));
    json.push_str(&format!("    \"speedup_8t_group_vs_per_commit_fsync\": {speedup_8t:.2}\n"));
    json.push_str("  }\n");
    json.push_str("}\n");

    let out = std::env::var("CCDB_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR7.json"));
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());
}
