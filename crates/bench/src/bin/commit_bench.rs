//! Commit-pipeline benchmark: group-commit WAL flushing vs the per-commit
//! fsync baseline, single-threaded and with 8 concurrent committers.
//!
//! Runs against the raw engine (no compliance plugin) with **fsync on** —
//! the whole point of group commit is amortizing the fsync, so benching
//! with fsync off would measure nothing. Writes `BENCH_PR4.json` into the
//! repo root (override with `CCDB_BENCH_OUT`).
//!
//! Usage: `cargo run --release -p ccdb-bench --bin commit_bench`

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use ccdb_bench::TempDir;
use ccdb_btree::SplitPolicy;
use ccdb_common::{Duration, VirtualClock};
use ccdb_engine::{Engine, EngineConfig};

/// Transactions per scenario (divisible by every thread count).
const TXNS: u32 = 480;
/// Runs per scenario; the best (least interference) run is reported.
const RUNS: usize = 2;

struct Scenario {
    threads: u32,
    group_commit: bool,
}

struct Outcome {
    threads: u32,
    group_commit: bool,
    secs: f64,
    commits_per_sec: f64,
    batches: u64,
    txns_per_batch: f64,
    fsyncs_saved: u64,
}

fn run(s: &Scenario) -> Outcome {
    let d = TempDir::new(&format!("commit-{}t-{}", s.threads, s.group_commit));
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(25)));
    let mut cfg = EngineConfig::new(&d.0, 256);
    cfg.group_commit = s.group_commit;
    let e = Arc::new(Engine::open(cfg, clock).unwrap());
    let rel = e.create_relation("bench", SplitPolicy::KeyOnly).unwrap();

    let per_thread = TXNS / s.threads;
    let start = Instant::now();
    let mut handles = Vec::new();
    for w in 0..s.threads {
        let e = e.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                let t = e.begin().unwrap();
                e.write(t, rel, format!("w{w}-k{i:05}").as_bytes(), &i.to_le_bytes()).unwrap();
                e.commit(t).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = e.stats();
    Outcome {
        threads: s.threads,
        group_commit: s.group_commit,
        secs,
        commits_per_sec: f64::from(TXNS) / secs,
        batches: stats.group_commit_batches,
        txns_per_batch: if stats.group_commit_batches > 0 {
            stats.group_commit_txns as f64 / stats.group_commit_batches as f64
        } else {
            0.0
        },
        fsyncs_saved: stats.fsyncs_saved,
    }
}

fn main() {
    let scenarios = [
        Scenario { threads: 1, group_commit: false },
        Scenario { threads: 1, group_commit: true },
        Scenario { threads: 8, group_commit: false },
        Scenario { threads: 8, group_commit: true },
    ];
    let mut outcomes = Vec::new();
    for s in &scenarios {
        let o = (0..RUNS)
            .map(|_| run(s))
            .max_by(|a, b| a.commits_per_sec.total_cmp(&b.commits_per_sec))
            .expect("RUNS > 0");
        println!(
            "{} thread(s), group_commit={:<5} {:8.1} commits/s  ({:.3}s, {} batches, {:.1} txns/batch, {} fsyncs saved)",
            o.threads, o.group_commit, o.commits_per_sec, o.secs, o.batches, o.txns_per_batch, o.fsyncs_saved
        );
        outcomes.push(o);
    }
    let base_8t = outcomes
        .iter()
        .find(|o| o.threads == 8 && !o.group_commit)
        .map(|o| o.commits_per_sec)
        .unwrap();
    let group_8t = outcomes
        .iter()
        .find(|o| o.threads == 8 && o.group_commit)
        .map(|o| o.commits_per_sec)
        .unwrap();
    let speedup = group_8t / base_8t;
    println!("8-thread speedup (group commit vs per-commit fsync): {speedup:.2}x");

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"commit-pipeline\",\n");
    json.push_str("  \"fsync\": true,\n");
    json.push_str(&format!("  \"txns_per_scenario\": {TXNS},\n"));
    json.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"group_commit\": {}, \"secs\": {:.4}, \"commits_per_sec\": {:.1}, \"batches\": {}, \"txns_per_batch\": {:.2}, \"fsyncs_saved\": {}}}{}\n",
            o.threads,
            o.group_commit,
            o.secs,
            o.commits_per_sec,
            o.batches,
            o.txns_per_batch,
            o.fsyncs_saved,
            if i + 1 < outcomes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_8t_group_vs_per_commit_fsync\": {speedup:.2}\n"));
    json.push_str("}\n");

    let out = std::env::var("CCDB_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR4.json"));
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());
}
