//! Audit-scaling benchmark: the serial single-pass auditor vs the parallel
//! three-stage pipeline at 1/2/4/8 worker threads, over a TPC-C-loaded
//! log-consistent database.
//!
//! The database file sits on the paper's emulated remote medium
//! (per-pread latency). The latency model is switched to **sleep**
//! (blocking-I/O semantics) for the audit runs so concurrent readers
//! overlap their waits like real threads blocked in `pread(2)` — with the
//! spin model every waiter burns the same core and no I/O-bound phase can
//! scale on a small CI box. Audits are dry-runs over the *same* quiesced
//! state; the bench asserts every configuration returns the same clean
//! verdict and completeness hash before reporting a single number.
//!
//! Writes `BENCH_PR5.json` into the repo root (override with
//! `CCDB_BENCH_OUT`).
//!
//! Usage: `cargo run --release -p ccdb-bench --bin audit_bench`

use std::path::PathBuf;
use std::time::Instant;

use ccdb_core::{AuditConfig, AuditOutcome, CompliantDb, Mode};
use ccdb_tpcc::TpccScale;

/// Transactions after the load phase (sizes `L` for the replay stages).
const TXNS: usize = 600;
/// Emulated remote-storage latency per pread during the audit runs.
const AUDIT_IO_LATENCY_US: u64 = 500;
/// Timed runs per configuration; the best run is reported.
const RUNS: usize = 2;

struct Outcome {
    label: String,
    threads: u64,
    secs: f64,
    decode_us: u64,
    replay_us: u64,
    merge_us: u64,
    tree_us: u64,
    join_us: u64,
    wal_tail_us: u64,
    records: u64,
    chunks: u64,
}

fn run(db: &CompliantDb, cfg: AuditConfig, label: &str) -> (Outcome, AuditOutcome) {
    let mut best: Option<(f64, AuditOutcome)> = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let out = db.audit_outcome_with(cfg).unwrap();
        let secs = t0.elapsed().as_secs_f64();
        assert!(
            out.report.is_clean(),
            "{label}: audit flagged an honest database: {:?}",
            &out.report.violations[..out.report.violations.len().min(3)]
        );
        if best.as_ref().map(|(s, _)| secs < *s).unwrap_or(true) {
            best = Some((secs, out));
        }
    }
    let (secs, out) = best.expect("RUNS > 0");
    let s = &out.report.stats;
    (
        Outcome {
            label: label.to_string(),
            threads: s.threads_used,
            secs,
            decode_us: s.log_decode_us,
            replay_us: s.log_replay_us,
            merge_us: s.log_merge_us,
            tree_us: s.tree_verify_us,
            join_us: s.completeness_join_us,
            wal_tail_us: s.wal_tail_us,
            records: s.records_scanned,
            chunks: s.l_chunks,
        },
        out,
    )
}

fn main() {
    // Load TPC-C, audit the load out (epoch roll), then run the measured
    // transaction mix. The returned database is kept open: all audit
    // configurations below dry-run over this one quiesced state.
    let (_res, db, _t, _dir) =
        ccdb_bench::run_tpcc(Mode::LogConsistent, TpccScale::small(1), 256, TXNS, 4);
    db.set_io_latency_us(AUDIT_IO_LATENCY_US);
    db.set_io_latency_sleep(true);

    let (serial, serial_out) = run(&db, AuditConfig::serial(), "serial");
    println!(
        "serial oracle: {:.3}s  ({} records, {} final tuples)",
        serial.secs, serial.records, serial_out.report.stats.tuples_final
    );

    let mut outcomes = vec![serial];
    let mut speedup_4t = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let cfg = AuditConfig::default().with_threads(threads);
        let (o, out) = run(&db, cfg, &format!("parallel-{threads}t"));
        // Verdict identity is a precondition for the numbers to mean
        // anything.
        assert_eq!(
            serial_out.report.violations, out.report.violations,
            "parallel-{threads}t diverged from the serial oracle"
        );
        assert_eq!(
            serial_out.tuple_hash, out.tuple_hash,
            "parallel-{threads}t completeness hash diverged"
        );
        let speedup = outcomes[0].secs / o.secs;
        if threads == 4 {
            speedup_4t = speedup;
        }
        println!(
            "parallel {threads}t: {:.3}s  ({speedup:.2}x vs serial; decode {}µs, replay {}µs, merge {}µs, tree {}µs, join {}µs, wal-tail {}µs, {} chunks)",
            o.secs, o.decode_us, o.replay_us, o.merge_us, o.tree_us, o.join_us, o.wal_tail_us, o.chunks
        );
        outcomes.push(o);
    }
    println!("4-thread audit speedup vs serial: {speedup_4t:.2}x");

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"audit-pipeline\",\n");
    json.push_str("  \"workload\": \"tpcc-small-1w-log-consistent\",\n");
    json.push_str(&format!("  \"txns\": {TXNS},\n"));
    json.push_str(&format!("  \"io_latency_us\": {AUDIT_IO_LATENCY_US},\n"));
    json.push_str("  \"io_latency_model\": \"sleep\",\n");
    json.push_str("  \"configs\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"threads\": {}, \"secs\": {:.4}, \"speedup_vs_serial\": {:.2}, \"log_decode_us\": {}, \"log_replay_us\": {}, \"log_merge_us\": {}, \"tree_verify_us\": {}, \"completeness_join_us\": {}, \"wal_tail_us\": {}, \"records\": {}, \"l_chunks\": {}}}{}\n",
            o.label,
            o.threads,
            o.secs,
            outcomes[0].secs / o.secs,
            o.decode_us,
            o.replay_us,
            o.merge_us,
            o.tree_us,
            o.join_us,
            o.wal_tail_us,
            o.records,
            o.chunks,
            if i + 1 < outcomes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_4t_vs_serial\": {speedup_4t:.2}\n"));
    json.push_str("}\n");

    let out = std::env::var("CCDB_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR5.json"));
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());
}
