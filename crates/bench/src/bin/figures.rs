//! Regenerates every table and figure of the paper's Section VII.
//!
//! ```text
//! cargo run -p ccdb-bench --release --bin figures -- all
//! cargo run -p ccdb-bench --release --bin figures -- fig3a [--full]
//! ```
//!
//! Subcommands: `fig3a`, `fig3b`, `fig3c`, `fig4a`, `fig4b`, `space`,
//! `audit`, `all`. The default sizes are laptop-scale; `--full` multiplies
//! the workload (closer to the paper's 100 K transactions, minutes of wall
//! time per figure on one core).

use ccdb_bench::*;
use ccdb_core::Mode;
use ccdb_tpcc::TpccScale;

fn mode_name(m: Mode) -> &'static str {
    match m {
        Mode::Regular => "Regular TPC-C",
        Mode::LogConsistent => "Log-Consistent",
        Mode::HashOnRead => "Log-Consistent+Hash-on-Read",
    }
}

struct Sizes {
    txns: usize,
    points: usize,
    fig4_tuples: usize,
}

fn fig3_table(title: &str, scale: TpccScale, cache_pages: usize, s: &Sizes) {
    println!("\n=== {title} ===");
    println!(
        "(scale: {} warehouses x {} districts x {} customers, {} items; cache {} pages)",
        scale.warehouses, scale.districts, scale.customers_per_district, scale.items, cache_pages
    );
    let results = fig3(scale, cache_pages, s.txns, s.points);
    print!("{:>8}", "txns");
    for r in &results {
        print!("  {:>28}", mode_name(r.mode));
    }
    println!();
    for i in 0..results[0].points.len() {
        print!("{:>8}", results[0].points[i].txns);
        for r in &results {
            print!("  {:>26.2}s", r.points[i].secs);
        }
        println!();
    }
    let base = results[0].points.last().unwrap().secs;
    for r in &results[1..] {
        let total = r.points.last().unwrap().secs;
        println!(
            "{:>28}: total {:.2}s, overhead vs regular {:+.1}%  (|L| = {:.1} MB, reads hashed = {})",
            mode_name(r.mode),
            total,
            (total / base - 1.0) * 100.0,
            r.log_bytes as f64 / 1e6,
            r.read_records
        );
    }
}

fn fig4_table(title: &str, workload: Fig4Workload, s: &Sizes) {
    println!("\n=== {title} ===");
    let (upd, dist) = match workload {
        Fig4Workload::Stock => ("4x NURand-skewed", "skewed"),
        Fig4Workload::OrderLine => ("1.18x uniform", "uniform"),
    };
    println!("({} tuples, {} updates, {} distribution)", s.fig4_tuples, upd, dist);
    println!(
        "{:>10} {:>12} {:>15} {:>12} {:>12}",
        "threshold", "live pages", "historic pages", "time splits", "key splits"
    );
    for i in 0..=10 {
        let theta = i as f64 / 10.0;
        let p = fig4_point(workload, theta, s.fig4_tuples);
        println!(
            "{:>10.1} {:>12} {:>15} {:>12} {:>12}",
            p.threshold, p.live_pages, p.historic_pages, p.time_splits, p.key_splits
        );
    }
}

fn space_table(s: &Sizes) {
    println!("\n=== Table a: space overhead ===");
    let scale = TpccScale::small(2);
    // Large cache.
    let (big, db, t, _d) = run_tpcc(Mode::HashOnRead, scale, 4096, s.txns, 1);
    let (avg_tuple, pct) = per_tuple_overhead(&db, &t);
    drop(db);
    // Small cache (the paper's 32 MB case: many more physical reads).
    let (small, _db2, _t2, _d2) = run_tpcc(Mode::HashOnRead, scale, 192, s.txns, 1);
    println!("after {} TPC-C transactions:", s.txns);
    println!("  |L| on WORM:                      {:>10.2} MB", big.log_bytes as f64 / 1e6);
    println!("  NEW_TUPLE records:                {:>10}", big.new_tuple_records);
    println!(
        "  READ records, large cache ({:>4}p): {:>9}  (~{:.2} MB of hashes)",
        4096,
        big.read_records,
        big.read_records as f64 * 44.0 / 1e6
    );
    println!(
        "  READ records, small cache ({:>4}p): {:>9}  (~{:.2} MB of hashes)",
        192,
        small.read_records,
        small.read_records as f64 * 44.0 / 1e6
    );
    println!(
        "  buffer misses large/small cache:   {:>9} / {}",
        big.buffer_misses, small.buffer_misses
    );
    println!(
        "  per-tuple metadata (PGNO+seqno):   {:>9.1} bytes vs avg tuple {:.0} bytes = {:.1}%",
        10.0, avg_tuple, pct
    );
    // TSB vs regular page counts for the STOCK shape at threshold 0.5.
    let tsb = fig4_point(Fig4Workload::Stock, 0.5, s.fig4_tuples);
    let reg = fig4_point(Fig4Workload::Stock, 0.0, s.fig4_tuples);
    println!(
        "  STOCK-shape pages: B+-tree {} live / {} historic; TSB@0.5 {} live / {} historic",
        reg.live_pages, reg.historic_pages, tsb.live_pages, tsb.historic_pages
    );
}

fn audit_table(s: &Sizes) {
    println!("\n=== Table c: audit time ===");
    for mode in [Mode::LogConsistent, Mode::HashOnRead] {
        let a = audit_timings(mode, TpccScale::small(2), 1024, s.txns);
        println!("{}:", mode_name(mode));
        println!("  execution time:        {:>10.2} s", a.run_secs);
        println!(
            "  audit total:           {:>10.2} s  ({:.1}% of execution)",
            a.audit_secs,
            a.audit_secs / a.run_secs * 100.0
        );
        println!("    snapshot fold:       {:>10.2} ms", a.stats.snapshot_us as f64 / 1e3);
        println!(
            "    log scan (+replay):  {:>10.2} ms  ({} records, {:.1} MB)",
            a.stats.log_scan_us as f64 / 1e3,
            a.stats.records_scanned,
            a.stats.log_bytes as f64 / 1e6
        );
        println!(
            "    final-state fold:    {:>10.2} ms  ({} tuples)",
            a.stats.final_state_us as f64 / 1e3,
            a.stats.tuples_final
        );
        println!("    read hashes checked: {:>10}", a.stats.reads_verified);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let what = args.first().map(|s| s.as_str()).unwrap_or("all");
    let s = if full {
        Sizes { txns: 10_000, points: 10, fig4_tuples: 20_000 }
    } else {
        Sizes { txns: 2_000, points: 10, fig4_tuples: 4_000 }
    };
    let run_fig3a = || {
        fig3_table(
            "Figure 3(a): 2 warehouses, cache << DB (10-warehouse/256MB analogue)",
            TpccScale::small(2),
            192,
            &s,
        )
    };
    let run_fig3b = || {
        fig3_table(
            "Figure 3(b): 2 warehouses, cache ~ DB (10-warehouse/512MB analogue)",
            TpccScale::small(2),
            4096,
            &s,
        )
    };
    let run_fig3c = || {
        fig3_table(
            "Figure 3(c): 1 warehouse, memory-resident (1-warehouse/256MB analogue)",
            TpccScale::small(1),
            8192,
            &s,
        )
    };
    match what {
        "fig3a" => run_fig3a(),
        "fig3b" => run_fig3b(),
        "fig3c" => run_fig3c(),
        "fig4a" => fig4_table("Figure 4(a): STOCK shape", Fig4Workload::Stock, &s),
        "fig4b" => fig4_table("Figure 4(b): ORDER_LINE shape", Fig4Workload::OrderLine, &s),
        "space" => space_table(&s),
        "audit" => audit_table(&s),
        "all" => {
            run_fig3a();
            run_fig3b();
            run_fig3c();
            fig4_table("Figure 4(a): STOCK shape", Fig4Workload::Stock, &s);
            fig4_table("Figure 4(b): ORDER_LINE shape", Fig4Workload::OrderLine, &s);
            space_table(&s);
            audit_table(&s);
        }
        other => {
            eprintln!("unknown experiment {other:?}; expected fig3a|fig3b|fig3c|fig4a|fig4b|space|audit|all");
            std::process::exit(2);
        }
    }
}
