//! CI smoke runner for the adversary campaign fuzzer.
//!
//! Runs a bounded batch of seeded campaigns (`CCDB_CAMPAIGN_SEEDS`, default
//! 25, offset from `CCDB_CAMPAIGN_BASE_SEED`) and exits non-zero on the
//! first violated seed, after writing the seed plus its structured action
//! trace as a JSON artifact (`CCDB_CAMPAIGN_ARTIFACT`, default
//! `campaign-failure.json`) for the CI job to upload.
//!
//! Replay a failure exactly with
//! `CCDB_CAMPAIGN_REPLAY_SEED=<seed> cargo test --test campaign \
//!  replay_campaign_seed -- --ignored --nocapture`.

use ccdb_bench::campaign::{run_campaign_schedule, CampaignFailure, CAMPAIGN_BASE_SEED};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Minimal JSON string escaping (the artifact holds only ASCII traces).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_artifact(path: &str, f: &CampaignFailure) {
    let trace: Vec<String> = f.trace.iter().map(|a| json_str(a)).collect();
    let body = format!(
        "{{\n  \"seed\": {},\n  \"replay\": {},\n  \"error\": {},\n  \"trace\": [\n    {}\n  ]\n}}\n",
        f.seed,
        json_str(&format!("CCDB_CAMPAIGN_REPLAY_SEED={}", f.seed)),
        json_str(&f.error),
        trace.join(",\n    ")
    );
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("warning: could not write artifact {path}: {e}");
    } else {
        eprintln!("failure artifact written to {path}");
    }
}

fn main() {
    let n = env_u64("CCDB_CAMPAIGN_SEEDS", 25);
    let base = env_u64("CCDB_CAMPAIGN_BASE_SEED", CAMPAIGN_BASE_SEED);
    let artifact = std::env::var("CCDB_CAMPAIGN_ARTIFACT")
        .unwrap_or_else(|_| "campaign-failure.json".to_string());

    let (mut tampered, mut detected, mut commits, mut shredded, mut held) = (0u64, 0u64, 0, 0, 0);
    let mut years = 0.0f64;
    for i in 0..n {
        let seed = base + i;
        match run_campaign_schedule(seed) {
            Ok(o) => {
                tampered += (o.tampers_landed > 0) as u64;
                detected += o.detected as u64;
                commits += o.commits;
                shredded += o.shredded;
                held += o.held_spared;
                years += o.virtual_micros_advanced as f64 / (365.0 * 86_400.0 * 1e6);
            }
            Err(f) => {
                eprintln!("{f}");
                write_artifact(&artifact, &f);
                std::process::exit(1);
            }
        }
    }
    println!(
        "campaign fuzz: {n} seeds OK ({tampered} tampered / {detected} detected, \
         {commits} commits, {shredded} shredded, {held} hold-spared, \
         {years:.1} virtual years)"
    );
}
