//! Shard-scaling sweep: the `server_bench` workload generalized to sharded
//! deployments. For every (shard count × cross-shard ratio) cell, N client
//! connections hammer an in-process `ccdb-server` over TCP loopback —
//! single-shard transactions ride the 1-writer fast path, cross-shard
//! transactions go through the full 2PC-on-L coordinator — and every cell
//! ends with the serial-oracle and parallel deployment audits agreeing the
//! log (including the cross-shard decision join) is clean.
//!
//! Writes `BENCH_PR9.json` into the repo root (override with
//! `CCDB_BENCH_OUT`). Scale knobs: `CCDB_BENCH_SHARDS` (comma list,
//! default `1,2,4`), `CCDB_BENCH_XSHARD` (cross-shard percentages, default
//! `0,50,100`), `CCDB_BENCH_CLIENTS` (default 8), `CCDB_BENCH_TXNS`
//! (transactions per client, default 60).
//!
//! Usage: `cargo run --release -p ccdb-bench --bin shard_bench`

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ccdb_bench::TempDir;
use ccdb_common::{Duration, VirtualClock};
use ccdb_core::db::{ComplianceConfig, Mode};
use ccdb_core::ShardMap;
use ccdb_rpc::client::Client;
use ccdb_server::{Server, ServerConfig};

/// Keys per transaction. Cross-shard transactions draw them uniformly (so
/// with ≥2 shards virtually every one spans shards); single-shard
/// transactions steer all four onto the client's home shard via the same
/// `ShardMap` the deployment routes with.
const FAN: usize = 4;

/// Runs per sweep cell; the best (least interference) run is reported,
/// mirroring `server_bench`'s engine scenarios.
const RUNS_PER_CELL: usize = 3;

fn env_or(name: &str, default: u32) -> u32 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_list(name: &str, default: &[u32]) -> Vec<u32> {
    std::env::var(name)
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<u32>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

struct RunOutcome {
    shards: u32,
    cross_pct: u32,
    acked_commits: u64,
    secs: f64,
    commits_per_sec: f64,
    shard_local_commits: u64,
    audits_clean: bool,
    serial_matches_parallel: bool,
}

/// A key for client `w`, txn `i`, slot `j`; `salt` varies the hash until
/// the key lands on the wanted shard.
fn key_for(w: u32, i: u32, j: usize, salt: u32) -> Vec<u8> {
    format!("w{w:02}-i{i:05}-{j}-{salt}").into_bytes()
}

fn run_cell(shards: u32, cross_pct: u32, clients: u32, txns: u32) -> RunOutcome {
    let d = TempDir::new(&format!("shard-bench-{shards}s-{cross_pct}x"));
    // Fsync off: the sweep measures routing + coordination, not the disk.
    let compliance = ComplianceConfig {
        mode: Mode::LogConsistent,
        cache_pages: 512,
        fsync: false,
        ..ComplianceConfig::default()
    };
    let mut config = ServerConfig::new(&d.0, compliance);
    config.shards = shards;
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(20)));
    let server = Server::start(config, clock).unwrap();
    let addr = server.addr().to_string();

    {
        let mut c = Client::connect(&addr, "bench").unwrap();
        c.create_relation("orders").unwrap();
    }
    let map = ShardMap::new(shards).unwrap();

    let acked = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..clients {
            let (addr, acked) = (addr.clone(), acked.clone());
            handles.push(s.spawn(move || {
                let mut c = Client::connect(&addr, "bench").unwrap();
                let rel = c.rel_id("orders").unwrap();
                let home = (w % shards) as usize;
                for i in 0..txns {
                    // Bresenham spread: exactly `cross_pct`% of transactions
                    // are cross-shard, interleaved evenly through the run.
                    let cross = (u64::from(i) + 1) * u64::from(cross_pct) / 100
                        > u64::from(i) * u64::from(cross_pct) / 100;
                    let txn = c.begin().unwrap();
                    for j in 0..FAN {
                        let key = if cross || shards == 1 {
                            key_for(w, i, j, 0)
                        } else {
                            // Steer onto the home shard: bump the salt until
                            // the deployment's own map routes the key there.
                            (0..)
                                .map(|salt| key_for(w, i, j, salt))
                                .find(|k| map.shard_of(k) == home)
                                .expect("salt search is unbounded")
                        };
                        c.write(txn, rel, &key, &i.to_le_bytes()).unwrap();
                    }
                    c.commit(txn).unwrap();
                    acked.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let acked = acked.load(Ordering::Relaxed);

    // A cross-shard commit lands on every written shard's engine, so the
    // per-shard sum exceeds the acked count exactly when 2PC ran.
    let shard_local_commits: u64 = match server.sharded() {
        Some(db) => db.shards().iter().map(|s| s.engine().stats().commits).sum(),
        None => server.tenants().tenant("bench").map(|db| db.engine().stats().commits).unwrap_or(0),
    };

    // Every cell ends audit-clean under both strategies — for sharded
    // deployments the parallel arm is the full cross-shard decision join.
    let mut c = Client::connect(&addr, "bench").unwrap();
    let serial = c.audit(true).unwrap();
    let parallel = c.audit(false).unwrap();

    RunOutcome {
        shards,
        cross_pct,
        acked_commits: acked,
        secs,
        commits_per_sec: acked as f64 / secs,
        shard_local_commits,
        audits_clean: serial.0 && parallel.0,
        serial_matches_parallel: serial == parallel,
    }
}

fn main() {
    let shard_counts = env_list("CCDB_BENCH_SHARDS", &[1, 2, 4]);
    let cross_pcts = env_list("CCDB_BENCH_XSHARD", &[0, 50, 100]);
    let clients = env_or("CCDB_BENCH_CLIENTS", 8);
    let txns = env_or("CCDB_BENCH_TXNS", 60);

    println!(
        "shard sweep: shards {shard_counts:?} x cross-shard {cross_pcts:?}% \
         ({clients} clients x {txns} txns x {FAN} keys)"
    );
    // A throwaway cell first: the initial run pays one-off costs (page
    // cache, allocator warm-up, thread spawn) that would skew whichever
    // sweep cell happened to go first.
    let _ = run_cell(1, 0, 2, 10);
    let mut runs = Vec::new();
    for &shards in &shard_counts {
        for &pct in &cross_pcts {
            let o = (0..RUNS_PER_CELL)
                .map(|_| run_cell(shards, pct, clients, txns))
                .max_by(|a, b| a.commits_per_sec.total_cmp(&b.commits_per_sec))
                .expect("RUNS_PER_CELL > 0");
            println!(
                "{} shard(s) @ {:>3}% cross: {:8.1} commits/s ({} acked, {} shard-local, \
                 {:.3}s) clean={} serial==parallel={}",
                o.shards,
                o.cross_pct,
                o.commits_per_sec,
                o.acked_commits,
                o.shard_local_commits,
                o.secs,
                o.audits_clean,
                o.serial_matches_parallel
            );
            assert!(o.audits_clean, "{} shards @ {}%: audit reported violations", shards, pct);
            assert!(
                o.serial_matches_parallel,
                "{shards} shards @ {pct}%: serial oracle disagrees with deployment audit"
            );
            runs.push(o);
        }
    }

    let rate = |shards: u32, pct: u32| {
        runs.iter().find(|o| o.shards == shards && o.cross_pct == pct).map(|o| o.commits_per_sec)
    };
    let base_pct = cross_pcts[0];
    let base = rate(shard_counts[0], base_pct);

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"shard-scaling\",\n");
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"txns_per_client\": {txns},\n"));
    json.push_str(&format!("  \"keys_per_txn\": {FAN},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, o) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"cross_shard_pct\": {}, \"acked_commits\": {}, \
             \"shard_local_commits\": {}, \"secs\": {:.4}, \"commits_per_sec\": {:.1}, \
             \"audits_clean\": {}, \"serial_matches_parallel\": {}}}{}\n",
            o.shards,
            o.cross_pct,
            o.acked_commits,
            o.shard_local_commits,
            o.secs,
            o.commits_per_sec,
            o.audits_clean,
            o.serial_matches_parallel,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"scaling\": {\n");
    let mut lines = Vec::new();
    for &shards in &shard_counts[1..] {
        if let (Some(r), Some(b)) = (rate(shards, base_pct), base) {
            lines.push(format!("    \"speedup_{shards}_shards_at_{base_pct}pct\": {:.2}", r / b));
        }
    }
    for &shards in &shard_counts {
        if let (Some(hi), Some(lo)) =
            (rate(shards, *cross_pcts.last().unwrap()), rate(shards, base_pct))
        {
            lines.push(format!(
                "    \"cross_shard_ratio_{shards}_shards_hi_over_lo\": {:.2}",
                hi / lo
            ));
        }
    }
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  }\n");
    json.push_str("}\n");

    let out = std::env::var("CCDB_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR9.json"));
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());
}
