//! A dependency-free microbenchmark harness (the workspace builds with zero
//! external crates, so `criterion` is not available offline).
//!
//! Deliberately small: warm-up, iteration-count calibration to a target batch
//! duration, several batches, report the minimum (least-noise) per-iteration
//! time. Good enough to reproduce the paper's relative ablations; not a
//! statistics suite.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time per measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(40);
/// Number of measured batches.
const BATCHES: usize = 5;

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Benchmarks a closure, printing `name: <time>/iter`.
/// Returns the best per-iteration time in nanoseconds.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
    // Warm-up + calibration.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (BATCH_TARGET.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;

    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per = start.elapsed().as_nanos() as f64 / iters as f64;
        if per < best {
            best = per;
        }
    }
    println!("{name:<40} {:>12}/iter  ({iters} iters/batch)", fmt_ns(best));
    best
}

/// Benchmarks a routine whose input must be freshly constructed each time
/// (setup time excluded). Runs `rounds` timed rounds, reports the minimum.
pub fn bench_with_setup<S, R>(
    name: &str,
    rounds: usize,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> R,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds.max(1) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let ns = start.elapsed().as_nanos() as f64;
        if ns < best {
            best = ns;
        }
    }
    println!("{name:<40} {:>12}/iter  (best of {rounds})", fmt_ns(best));
    best
}

/// Prints a section header.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}
