//! Experiment machinery for regenerating the paper's tables and figures.
//!
//! Everything in Section VII is driven from here (via the `figures` binary):
//!
//! * **Figure 3(a)–(c)** — TPC-C total run time as a function of transaction
//!   count, for Regular vs Log-Consistent vs Log-Consistent+Hash-on-Read, at
//!   three cache-to-database-size ratios.
//! * **Figure 4(a)–(b)** — live vs historic page counts as a function of the
//!   TSB split-threshold, for the STOCK-shaped (skewed, many updates per
//!   tuple) and ORDER_LINE-shaped (uniform, ≤1 update per tuple) workloads.
//! * **Table a** — space overhead: size of `L`, read-hash volume vs cache
//!   size, per-tuple metadata overhead, TSB vs B+-tree page counts.
//! * **Table c** — audit time, split into snapshot / log-scan / final-state
//!   phases, against total execution time.
//!
//! Scaled-down parameters (documented per experiment in `EXPERIMENTS.md`)
//! keep runs laptop-sized; the virtual clock compresses regret intervals so
//! the periodic dirty-page sweep fires realistically often.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use ccdb_btree::SplitPolicy;
use ccdb_common::SplitMix64 as StdRng;
use ccdb_common::{Duration, VirtualClock};
use ccdb_core::{AuditStats, ComplianceConfig, CompliantDb, Mode};
use ccdb_tpcc::{load, Driver, Tpcc, TpccScale};

pub mod campaign;
pub mod microbench;
pub mod torture;

/// Emulated per-I/O latency of the database volume during measured runs
/// (the paper's DB lived on an NFS-mounted NetApp filer; local-disk runs
/// would be CPU-bound and overstate the compliance layer's relative cost).
pub const IO_LATENCY_US: u64 = 150;

/// A scratch directory removed on drop.
pub struct TempDir(pub PathBuf);

impl TempDir {
    /// Creates a unique scratch directory.
    pub fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-bench-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One Figure 3 measurement point.
#[derive(Clone, Copy, Debug)]
pub struct RunPoint {
    /// Transactions completed so far.
    pub txns: usize,
    /// Cumulative wall-clock seconds.
    pub secs: f64,
}

/// Everything a TPC-C run produces for reporting.
pub struct RunResult {
    /// The mode that ran.
    pub mode: Mode,
    /// The measurement series.
    pub points: Vec<RunPoint>,
    /// Compliance-log bytes on WORM (0 in Regular mode).
    pub log_bytes: u64,
    /// `READ` records emitted (hash-on-read only).
    pub read_records: u64,
    /// `NEW_TUPLE` records emitted.
    pub new_tuple_records: u64,
    /// Buffer-pool misses (physical reads).
    pub buffer_misses: u64,
    /// Pages in the database file.
    pub db_pages: u64,
}

/// Opens a fresh compliant database for benchmarking (fsync off, 1-second
/// virtual regret interval so sweeps fire every few hundred transactions).
pub fn open_db(dir: &TempDir, mode: Mode, cache_pages: usize) -> (CompliantDb, Arc<VirtualClock>) {
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(20)));
    let db = CompliantDb::open(
        &dir.0,
        clock.clone(),
        ComplianceConfig {
            mode,
            regret_interval: Duration::from_secs(1),
            cache_pages,
            auditor_seed: [0xB0; 32],
            fsync: false,
            worm_artifact_retention: None,
            ..ComplianceConfig::default()
        },
    )
    .unwrap();
    (db, clock)
}

/// Loads TPC-C and runs `txns` transactions of the standard mix, recording
/// `points` cumulative-time measurements (the Figure 3 series).
pub fn run_tpcc(
    mode: Mode,
    scale: TpccScale,
    cache_pages: usize,
    txns: usize,
    points: usize,
) -> (RunResult, CompliantDb, Tpcc, TempDir) {
    let dir = TempDir::new("tpcc");
    let (db, _clock) = open_db(&dir, mode, cache_pages);
    let t = load(&db, scale, SplitPolicy::KeyOnly).unwrap();
    // The paper measures transactions against a pre-loaded database; close
    // the load out with an audit (epoch rotation) so |L| and the timings
    // below cover only the measured workload. The database file lives on
    // emulated remote storage (the paper's NFS filer).
    if db.plugin().is_some() {
        let report = db.audit().unwrap();
        assert!(
            report.is_clean(),
            "post-load audit: {:?}",
            &report.violations[..report.violations.len().min(3)]
        );
        db.plugin().unwrap().reset_stats();
    } else {
        db.engine().checkpoint().unwrap();
    }
    db.set_io_latency_us(IO_LATENCY_US);
    let mut driver = Driver::new(0xCC);
    let step = (txns / points).max(1);
    let mut series = Vec::new();
    let start = Instant::now();
    let mut done = 0;
    while done < txns {
        let n = step.min(txns - done);
        driver.run(&db, &t, n).unwrap();
        done += n;
        series.push(RunPoint { txns: done, secs: start.elapsed().as_secs_f64() });
    }
    let plugin_stats = db.plugin().map(|p| p.stats()).unwrap_or_default();
    let log_bytes = db.plugin().map(|p| p.logger().end_offset()).unwrap_or(0);
    let engine_stats = db.engine().stats();
    let result = RunResult {
        mode,
        points: series,
        log_bytes,
        read_records: plugin_stats.reads_hashed,
        new_tuple_records: plugin_stats.new_tuples,
        buffer_misses: engine_stats.buffer.misses,
        db_pages: engine_stats.db_pages,
    };
    (result, db, t, dir)
}

/// Runs all three Figure 3 modes at the given configuration.
pub fn fig3(scale: TpccScale, cache_pages: usize, txns: usize, points: usize) -> Vec<RunResult> {
    [Mode::Regular, Mode::LogConsistent, Mode::HashOnRead]
        .into_iter()
        .map(|mode| run_tpcc(mode, scale, cache_pages, txns, points).0)
        .collect()
}

/// A Figure 4 measurement: one split-threshold setting.
#[derive(Clone, Copy, Debug)]
pub struct Fig4Point {
    /// The split-threshold.
    pub threshold: f64,
    /// Live leaf pages at the end of the run.
    pub live_pages: usize,
    /// Historic (time-split, WORM-destined) pages.
    pub historic_pages: usize,
    /// Time splits performed.
    pub time_splits: u64,
    /// Key splits performed.
    pub key_splits: u64,
}

/// Which Figure 4 relation shape to emulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig4Workload {
    /// STOCK: NURand-skewed updates, ~4 updates per tuple on average
    /// (the paper: "400K updates for 100K tuples … highly skewed").
    Stock,
    /// ORDER_LINE: uniform updates, each tuple updated at most once
    /// (the paper: "TPC-C updates the tuples in the ORDER_LINE relation
    /// uniformly, with each tuple being updated at most once").
    OrderLine,
}

/// Runs the Figure 4 workload at one threshold and reports page counts.
/// Row payloads match the corresponding TPC-C relation's row size, so
/// tuples-per-page ratios track the paper's.
pub fn fig4_point(workload: Fig4Workload, threshold: f64, tuples: usize) -> Fig4Point {
    let dir = TempDir::new("fig4");
    let (db, _clock) = open_db(&dir, Mode::Regular, 4096);
    let rel = db.create_relation("target", SplitPolicy::TimeSplit { threshold }).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let row_len = match workload {
        Fig4Workload::Stock => 320,
        Fig4Workload::OrderLine => 70,
    };
    let value = |tag: u32| -> Vec<u8> {
        let mut v = vec![0u8; row_len];
        v[..4].copy_from_slice(&tag.to_le_bytes());
        v
    };
    // Initial load, sequential keys (append pattern leaves ~half-full pages,
    // like the paper's freshly loaded STOCK B+-tree).
    let batch = 100;
    let mut i = 0;
    while i < tuples {
        let txn = db.begin().unwrap();
        for j in i..(i + batch).min(tuples) {
            db.write(txn, rel, format!("{j:08}").as_bytes(), &value(0)).unwrap();
        }
        db.commit(txn).unwrap();
        i += batch;
    }
    db.engine().run_stamper().unwrap();
    // Updates.
    match workload {
        Fig4Workload::Stock => {
            let updates = tuples * 4;
            let mut done = 0;
            while done < updates {
                let n = batch.min(updates - done);
                let txn = db.begin().unwrap();
                for _ in 0..n {
                    let k = ccdb_tpcc::gen::nurand(&mut rng, 8191, 7911, 0, tuples as u64 - 1);
                    db.write(txn, rel, format!("{k:08}").as_bytes(), &value(1)).unwrap();
                }
                db.commit(txn).unwrap();
                db.engine().run_stamper().unwrap();
                done += n;
            }
        }
        Fig4Workload::OrderLine => {
            // The paper's measured ratio: 118 K updates over 100 K tuples —
            // one full uniform pass plus an 18 % second pass (most tuples
            // updated at most once).
            let mut order: Vec<usize> = (0..tuples).collect();
            rng.shuffle(&mut order);
            let extra = tuples * 18 / 100;
            let mut second: Vec<usize> = (0..tuples).collect();
            rng.shuffle(&mut second);
            second.truncate(extra);
            order.extend(second);
            for chunk in order.chunks(batch) {
                let txn = db.begin().unwrap();
                for &k in chunk {
                    db.write(txn, rel, format!("{k:08}").as_bytes(), &value(1)).unwrap();
                }
                db.commit(txn).unwrap();
                db.engine().run_stamper().unwrap();
            }
        }
    }
    let (live, historic, _inner) = db.engine().relation_pages(rel).unwrap();
    let stats = db.engine().tree(rel).unwrap().stats();
    Fig4Point {
        threshold,
        live_pages: live,
        historic_pages: historic,
        time_splits: stats.time_splits,
        key_splits: stats.key_splits,
    }
}

/// The audit-time table: run TPC-C, audit, report phase timings.
pub struct AuditTimings {
    /// Total transaction-execution wall time.
    pub run_secs: f64,
    /// Auditor phase timings.
    pub stats: AuditStats,
    /// Total audit wall time.
    pub audit_secs: f64,
}

/// Runs the audit-time experiment for one mode.
pub fn audit_timings(
    mode: Mode,
    scale: TpccScale,
    cache_pages: usize,
    txns: usize,
) -> AuditTimings {
    let (result, db, _t, _dir) = run_tpcc(mode, scale, cache_pages, txns, 1);
    let run_secs = result.points.last().map(|p| p.secs).unwrap_or(0.0);
    let start = Instant::now();
    let report = db.audit().unwrap();
    assert!(
        report.is_clean(),
        "benchmark audit must be clean: {:?}",
        &report.violations[..report.violations.len().min(3)]
    );
    AuditTimings { run_secs, stats: report.stats, audit_secs: start.elapsed().as_secs_f64() }
}

/// Average encoded TPC-C tuple size across a sample of relations. The fixed
/// per-tuple compliance metadata is 10 bytes (8-byte PGNO per `NEW_TUPLE`
/// record + the 2-byte tuple-order number) — the "space overhead … under
/// 10 %" row reports `10 / avg`.
pub fn per_tuple_overhead(db: &CompliantDb, t: &Tpcc) -> (f64, f64) {
    let mut total = 0usize;
    let mut count = 0usize;
    for rel in [t.stock, t.customer, t.order_line, t.orders] {
        let tree = db.engine().tree(rel).unwrap();
        let mut seen = 0;
        let _ = tree.scan_all(&mut |v| {
            total += v.encode_cell().len();
            count += 1;
            seen += 1;
            if seen > 2000 {
                Err(ccdb_common::Error::Invalid("sample done".into()))
            } else {
                Ok(())
            }
        });
    }
    let avg = total as f64 / count.max(1) as f64;
    (avg, 10.0 / avg * 100.0)
}

/// Deterministic payloads for microbenches: `n` pre-encoded byte strings.
pub fn synthetic_tuples(n: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n)
        .map(|i| {
            let mut v = vec![0u8; 100 + rng.gen_range(0..64usize)];
            v[..8].copy_from_slice(&(i as u64).to_le_bytes());
            v
        })
        .collect()
}
