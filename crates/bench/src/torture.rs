//! Crash-torture schedules: seeded workload → planned fault → simulated
//! crash → recovery → audit, with every outcome checkable and every failure
//! reproducible from its seed.
//!
//! One schedule ([`run_schedule`]) is a pure function of its `u64` seed:
//! the workload shape, the [`FaultPlan`], and every random choice inside the
//! run are drawn from the workspace's own [`SplitMix64`]. The harness
//! enforces the torture contract:
//!
//! 1. **Recovery converges.** After an injected crash/torn-write, reopening
//!    the database succeeds and every *acknowledged* commit is still
//!    readable with its last committed value (and aborted/unacknowledged
//!    work is gone). A commit whose `commit()` call *errored* with an
//!    injected fault is indeterminate — the Commit record may have reached
//!    the durable local WAL before the fault (e.g. a WORM-mirror failure
//!    after the local flush), in which case recovery rightly honours it.
//!    The harness resolves each such key against the recovered database and
//!    accepts either the old or the attempted value, but nothing else.
//! 2. **Compliance records survive.** Post-recovery transactions stamp and
//!    audit correctly — recovery re-emitted whatever status records the
//!    crash interrupted.
//! 3. **Audits never false-alarm and never false-pass.** The final audit is
//!    clean, *or* — only when the injected fault hit the WORM device
//!    itself — reports one of the expected named violations. Any other
//!    outcome (unexpected error, panic, unexplained violation) fails the
//!    schedule with its seed in the message.
//!
//! The schedule runner never installs an injector during recovery: a crash
//! models a dead process, and the reopened instance is a fresh one.

use std::collections::BTreeMap;
use std::sync::Arc;

use ccdb_btree::SplitPolicy;
use ccdb_common::{Duration, Error, SplitMix64, VirtualClock};
use ccdb_core::{ComplianceConfig, CompliantDb, Mode, Violation};
use ccdb_storage::{Fault, FaultInjector, FaultKind, FaultPlan, IoPoint};

use crate::TempDir;

/// What one torture schedule did, for aggregate reporting.
#[derive(Debug)]
pub struct TortureOutcome {
    /// The schedule's seed (sufficient to replay it exactly).
    pub seed: u64,
    /// The fault plan the schedule armed.
    pub plan: FaultPlan,
    /// The faults that actually fired before the crash (empty when the plan
    /// never triggered — those schedules double as honest-run soundness
    /// checks).
    pub fired: Vec<Fault>,
    /// Whether the schedule crashed and recovered.
    pub crashed: bool,
    /// Commits acknowledged before the (possible) crash.
    pub commits_before: usize,
    /// Commits acknowledged after recovery.
    pub commits_after: usize,
    /// Whether the final audit was clean.
    pub audit_clean: bool,
    /// Debug renderings of the final audit's violations (empty when clean).
    pub violations: Vec<String>,
}

/// Whether an error originated from the fault injector (possibly wrapped by
/// the compliance layer, e.g. `ComplianceHalt("WAL tail mirror: injected
/// fault: …")`).
pub fn is_injected_error(e: &Error) -> bool {
    e.is_injected() || e.to_string().contains("injected fault")
}

/// Violations the torture contract accepts when (and only when) the injected
/// fault hit the WORM device itself. A fault on the trusted device can leave
/// the compliance log genuinely behind the local database — exactly the
/// condition the auditor exists to name. Everything else must audit clean.
pub fn violation_allowed_for_worm_fault(v: &Violation) -> bool {
    matches!(
        v,
        Violation::WormTruncated { .. }
            | Violation::LogUnreadable { .. }
            | Violation::WalTailInconsistent { .. }
    )
}

fn draw_plan(rng: &mut SplitMix64) -> FaultPlan {
    let point = *rng.choose(&IoPoint::ALL);
    let at_count = rng.gen_range(1..25u64);
    let kind = match rng.gen_range(0..10u32) {
        0..=3 => FaultKind::Crash,
        4..=6 => FaultKind::Torn { keep_permille: rng.gen_range(0..1000u16) },
        _ => FaultKind::Transient,
    };
    let mut plan = FaultPlan::single(point, at_count, kind);
    if rng.gen_bool(0.25) {
        // A second, later fault: exercises transient-then-crash and
        // multi-fault plans.
        let point2 = *rng.choose(&IoPoint::ALL);
        plan = plan.with(point2, at_count + rng.gen_range(1..20u64), FaultKind::Crash);
    }
    plan
}

/// The model of acknowledged state: key → last committed value
/// (`None` = committed delete).
type Model = BTreeMap<Vec<u8>, Option<Vec<u8>>>;

struct StepResult {
    crashed: bool,
    commits: usize,
}

/// Runs `steps` workload steps against `db`, updating `model` only on
/// *acknowledged* commits. Returns on the first injected error (= crash) or
/// when the steps are exhausted. Non-injected errors abort the schedule.
///
/// When `commit()` itself fails with an injected error the transaction's
/// outcome is indeterminate (the Commit record may already be durable in the
/// local WAL — a WORM-mirror fault fires *after* the local flush). Those
/// keys land in `uncertain` with the value the transaction attempted, for
/// post-recovery resolution. Failures in `begin`/`write`/`abort` are *not*
/// indeterminate: no Commit record was appended, so recovery rolls the
/// transaction back.
fn run_workload(
    db: &CompliantDb,
    rel: ccdb_common::RelId,
    rng: &mut SplitMix64,
    model: &mut Model,
    uncertain: &mut Model,
    steps: usize,
    seed: u64,
) -> Result<StepResult, String> {
    let mut commits = 0usize;
    for _ in 0..steps {
        let kind = rng.gen_range(0..12u32);
        let r = match kind {
            0..=8 => {
                // A transaction of 1–4 writes/deletes.
                let n = rng.gen_range(1..5usize);
                let ops: Vec<(Vec<u8>, Option<Vec<u8>>)> = (0..n)
                    .map(|_| {
                        let key = vec![b'k', rng.gen_range(0..=255u8)];
                        if rng.gen_bool(0.12) {
                            (key, None)
                        } else {
                            let len = rng.gen_range(8..48usize);
                            let mut val = vec![0u8; len];
                            rng.fill_bytes(&mut val);
                            (key, Some(val))
                        }
                    })
                    .collect();
                let commit = rng.gen_bool(0.85);
                (|| -> Result<(), Error> {
                    let t = db.begin()?;
                    for (key, val) in &ops {
                        match val {
                            Some(v) => db.write(t, rel, key, v)?,
                            None => db.delete(t, rel, key)?,
                        }
                    }
                    if commit {
                        match db.commit(t) {
                            Ok(_) => {
                                commits += 1;
                                for (key, val) in ops {
                                    model.insert(key, val);
                                }
                                Ok(())
                            }
                            Err(e) => {
                                if is_injected_error(&e) {
                                    // Indeterminate: the fault may have fired
                                    // after the local WAL flush made the
                                    // Commit record durable.
                                    for (key, val) in ops {
                                        uncertain.insert(key, val);
                                    }
                                }
                                Err(e)
                            }
                        }
                    } else {
                        db.abort(t)
                    }
                })()
            }
            9..=10 => db.engine().run_stamper().map(|_| ()),
            _ => match db.audit() {
                Ok(report) if report.is_clean() => Ok(()),
                Ok(report) => {
                    // The auditor treats an unreadable page as evidence (a
                    // `BadPage`/`TreeIntegrity` violation) — correct for
                    // production, where a read error during audit IS
                    // suspicious. When the unreadable page was manufactured
                    // by OUR injector the run is simply crashed; anything
                    // else is a genuine false alarm.
                    let all_injected = report
                        .violations
                        .iter()
                        .all(|v| format!("{v:?}").contains("injected fault"));
                    if all_injected {
                        return Ok(StepResult { crashed: true, commits });
                    }
                    return Err(format!(
                        "seed {seed}: mid-run audit false alarm: {:?}",
                        report.violations
                    ));
                }
                Err(e) => Err(e),
            },
        };
        if let Err(e) = r {
            if is_injected_error(&e) {
                return Ok(StepResult { crashed: true, commits });
            }
            return Err(format!("seed {seed}: unexpected workload error: {e}"));
        }
    }
    Ok(StepResult { crashed: false, commits })
}

/// Verifies every acknowledged commit in `model` against the recovered
/// database (torture-contract point 1).
fn check_model(
    db: &CompliantDb,
    rel: ccdb_common::RelId,
    model: &Model,
    seed: u64,
) -> Result<(), String> {
    for (key, expect) in model {
        let got = db
            .engine()
            .read_latest(rel, key)
            .map_err(|e| format!("seed {seed}: read_latest({key:02x?}) failed: {e}"))?;
        if got.as_ref() != expect.as_ref() {
            return Err(format!(
                "seed {seed}: acknowledged commit lost: key {key:02x?} expected len {:?} got len {:?}",
                expect.as_ref().map(|v| v.len()),
                got.as_ref().map(|v| v.len()),
            ));
        }
    }
    Ok(())
}

/// Resolves indeterminate commits against the recovered database: each key
/// must now read as either its last acknowledged value or the value the
/// interrupted transaction attempted — anything else is corruption. The
/// winning value is folded into `model` so later checks are exact.
fn resolve_uncertain(
    db: &CompliantDb,
    rel: ccdb_common::RelId,
    model: &mut Model,
    uncertain: &Model,
    seed: u64,
) -> Result<(), String> {
    for (key, attempted) in uncertain {
        let got = db
            .engine()
            .read_latest(rel, key)
            .map_err(|e| format!("seed {seed}: read_latest({key:02x?}) failed: {e}"))?;
        let acked = model.get(key).cloned().unwrap_or(None);
        if got == *attempted {
            model.insert(key.clone(), attempted.clone());
        } else if got != acked {
            return Err(format!(
                "seed {seed}: indeterminate commit resolved to a third value: key {key:02x?} \
                 acked len {:?}, attempted len {:?}, got len {:?}",
                acked.as_ref().map(|v| v.len()),
                attempted.as_ref().map(|v| v.len()),
                got.as_ref().map(|v| v.len()),
            ));
        }
    }
    Ok(())
}

/// Runs one deterministic crash-torture schedule. Returns `Err` (with the
/// seed embedded in the message) when any torture-contract point is
/// violated; panics never escape the workload itself.
pub fn run_schedule(seed: u64) -> Result<TortureOutcome, String> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mode = if rng.gen_bool(0.5) { Mode::HashOnRead } else { Mode::LogConsistent };
    let config = ComplianceConfig {
        mode,
        regret_interval: Duration::from_mins(5),
        cache_pages: rng.gen_range(16..64usize),
        auditor_seed: [7u8; 32],
        fsync: rng.gen_bool(0.15),
        worm_artifact_retention: None,
        ..ComplianceConfig::default()
    };
    let dir = TempDir::new(&format!("torture-{seed}"));
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(40)));
    let mut db = CompliantDb::open(&dir.0, clock.clone(), config.clone())
        .map_err(|e| format!("seed {seed}: open failed: {e}"))?;
    let rel = db
        .create_relation("t", SplitPolicy::KeyOnly)
        .map_err(|e| format!("seed {seed}: create_relation failed: {e}"))?;
    let mut model: Model = BTreeMap::new();
    let mut uncertain: Model = BTreeMap::new();

    // Unarmed warm-up: build some durable history first.
    let warm = rng.gen_range(0..8usize);
    let warm_res = run_workload(&db, rel, &mut rng, &mut model, &mut uncertain, warm, seed)?;
    debug_assert!(!warm_res.crashed);
    debug_assert!(uncertain.is_empty());

    // Arm the plan and run the armed phase.
    let plan = draw_plan(&mut rng);
    let injector = Arc::new(FaultInjector::armed(plan.clone()));
    db.set_fault_injector(Some(injector.clone()));
    let steps = rng.gen_range(8..40usize);
    let armed = run_workload(&db, rel, &mut rng, &mut model, &mut uncertain, steps, seed)?;
    let fired = injector.fired();
    let commits_before = warm_res.commits + armed.commits;

    // Crash (when a fault fired) and recover with no injector armed — the
    // recovered instance is a fresh process image.
    let crashed = armed.crashed;
    if crashed {
        db = db
            .crash_and_recover()
            .map_err(|e| format!("seed {seed}: recovery after injected crash failed: {e}"))?;
    } else {
        // The plan never triggered; disarm so the final audit runs clean I/O.
        db.set_fault_injector(None);
    }
    let rel = db
        .engine()
        .rel_id("t")
        .ok_or_else(|| format!("seed {seed}: relation lost across recovery"))?;

    // Resolve the (at most one) transaction whose commit was interrupted
    // mid-acknowledgement, then check contract point 1: acknowledged commits
    // survived.
    resolve_uncertain(&db, rel, &mut model, &uncertain, seed)
        .map_err(|e| format!("{e} [plan {plan:?}, fired {fired:?}]"))?;
    check_model(&db, rel, &model, seed)
        .map_err(|e| format!("{e} [plan {plan:?}, fired {fired:?}]"))?;

    // Contract point 2: the recovered database still works — more
    // transactions commit, stamp, and (below) audit.
    let mut post_uncertain: Model = BTreeMap::new();
    let post = rng.gen_range(1..6usize);
    let post_res = run_workload(&db, rel, &mut rng, &mut model, &mut post_uncertain, post, seed)?;
    debug_assert!(post_uncertain.is_empty());
    if post_res.crashed {
        return Err(format!("seed {seed}: injected error after recovery (injector must be gone)"));
    }
    db.engine()
        .run_stamper()
        .map_err(|e| format!("seed {seed}: post-recovery stamper failed: {e}"))?;
    check_model(&db, rel, &model, seed)?;

    // Contract point 3: the final audit is clean, or every violation is an
    // expected named one and the fault actually hit the WORM device.
    let report =
        db.audit().map_err(|e| format!("seed {seed}: final audit errored (must report): {e}"))?;
    let worm_fault_fired = fired.iter().any(|f| f.point == IoPoint::WormAppend);
    if !report.is_clean() {
        if !worm_fault_fired {
            return Err(format!(
                "seed {seed}: false alarm — no WORM fault fired ({fired:?}) but audit reported {:?}",
                report.violations
            ));
        }
        if let Some(bad) = report.violations.iter().find(|v| !violation_allowed_for_worm_fault(v)) {
            return Err(format!(
                "seed {seed}: WORM fault {fired:?} produced unexpected violation {bad:?}"
            ));
        }
    }

    Ok(TortureOutcome {
        seed,
        plan,
        fired,
        crashed,
        commits_before,
        commits_after: post_res.commits,
        audit_clean: report.is_clean(),
        violations: report.violations.iter().map(|v| format!("{v:?}")).collect(),
    })
}

/// Runs schedules for `seeds`, collecting outcomes; fails fast with the
/// first violated seed. The returned vector's aggregate (crash count, fired
/// faults) lets the caller assert the campaign exercised real faults rather
/// than vacuously passing.
pub fn run_campaign(seeds: impl IntoIterator<Item = u64>) -> Result<Vec<TortureOutcome>, String> {
    let mut out = Vec::new();
    for seed in seeds {
        out.push(run_schedule(seed)?);
    }
    Ok(out)
}

// --- sharded torture --------------------------------------------------------

/// What one sharded torture schedule did.
#[derive(Debug)]
pub struct ShardTortureOutcome {
    /// The schedule's seed.
    pub seed: u64,
    /// Shard count.
    pub shards: u32,
    /// Mid-2PC crash rounds executed.
    pub crash_rounds: usize,
    /// In-doubt transactions that resolved to COMMIT (a decision record
    /// was durable somewhere before the crash).
    pub resolved_commit: usize,
    /// In-doubt transactions that resolved to ABORT (presumed abort: no
    /// decision record survived anywhere).
    pub resolved_abort: usize,
    /// Whether the final sealing audit (every shard + cross-shard join)
    /// was clean.
    pub audit_clean: bool,
}

/// Reads a key through the shard map, bypassing transactions (recovered
/// latest state).
fn shard_read_latest(
    db: &ccdb_core::ShardedDb,
    rel: ccdb_common::RelId,
    key: &[u8],
) -> Result<Option<Vec<u8>>, Error> {
    let s = db.map().shard_of(key);
    db.shards()[s].engine().read_latest(rel, key)
}

/// Verifies the model against the recovered sharded deployment.
fn check_shard_model(
    db: &ccdb_core::ShardedDb,
    rel: ccdb_common::RelId,
    model: &Model,
    seed: u64,
) -> Result<(), String> {
    for (key, expect) in model {
        let got = shard_read_latest(db, rel, key)
            .map_err(|e| format!("seed {seed}: shard read_latest({key:02x?}) failed: {e}"))?;
        if got.as_ref() != expect.as_ref() {
            return Err(format!(
                "seed {seed}: acknowledged cross-shard commit lost: key {key:02x?} \
                 expected len {:?} got len {:?}",
                expect.as_ref().map(|v| v.len()),
                got.as_ref().map(|v| v.len()),
            ));
        }
    }
    Ok(())
}

/// A dry deployment audit (serial oracle per shard + cross-shard join)
/// that must be clean; violations fail the schedule with the seed.
fn assert_shard_audit_clean(
    db: &ccdb_core::ShardedDb,
    seed: u64,
    when: &str,
) -> Result<(), String> {
    let (outcomes, cross) = db
        .audit_dry(ccdb_core::AuditConfig::serial())
        .map_err(|e| format!("seed {seed}: {when} audit errored: {e}"))?;
    for (i, o) in outcomes.iter().enumerate() {
        if !o.report.is_clean() {
            return Err(format!("seed {seed}: {when}: shard {i} dirty: {:?}", o.report.violations));
        }
    }
    if !cross.is_empty() {
        return Err(format!("seed {seed}: {when}: cross-shard join dirty: {cross:?}"));
    }
    Ok(())
}

/// One deterministic sharded crash-torture schedule: cross-shard workload,
/// then repeated mid-2PC crashes — the protocol is driven by hand up to the
/// prepare phase, the decision is appended to a seeded *prefix* of the
/// participants (possibly none), and either one seeded shard or the whole
/// deployment crashes. Recovery must drive every in-doubt transaction to
/// the unique outcome the surviving decision records dictate (presumed
/// abort when none survived), identically on all participants, and the
/// deployment must audit clean — per shard and under the cross-shard join.
pub fn run_shard_schedule(seed: u64) -> Result<ShardTortureOutcome, String> {
    use ccdb_core::records::LogRecord;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let shards = if rng.gen_bool(0.5) { 2u32 } else { 3 };
    let config = ComplianceConfig {
        mode: Mode::LogConsistent,
        regret_interval: Duration::from_mins(5),
        cache_pages: rng.gen_range(32..128usize),
        auditor_seed: [7u8; 32],
        fsync: false,
        worm_artifact_retention: None,
        ..ComplianceConfig::default()
    };
    let dir = TempDir::new(&format!("shard-torture-{seed}"));
    let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(40)));
    let mut db = ccdb_core::ShardedDb::open(&dir.0, clock.clone(), config.clone(), shards)
        .map_err(|e| format!("seed {seed}: open failed: {e}"))?;
    let rel = db
        .create_relation("t", SplitPolicy::KeyOnly)
        .map_err(|e| format!("seed {seed}: create_relation failed: {e}"))?;
    let mut model: Model = BTreeMap::new();

    // A committed cross-shard workload step (goes through the real
    // coordinator, including its short-circuits).
    let workload_step = |db: &ccdb_core::ShardedDb,
                         rng: &mut SplitMix64,
                         model: &mut Model|
     -> Result<(), String> {
        let n = rng.gen_range(1..6usize);
        let ops: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
            .map(|_| {
                let key = vec![b'k', rng.gen_range(0..=255u8)];
                let mut val = vec![0u8; rng.gen_range(8..32usize)];
                rng.fill_bytes(&mut val);
                (key, val)
            })
            .collect();
        let commit = rng.gen_bool(0.85);
        let mut dtx = db.begin();
        for (key, val) in &ops {
            db.write(&mut dtx, rel, key, val)
                .map_err(|e| format!("seed {seed}: write failed: {e}"))?;
        }
        if commit {
            db.commit(dtx).map_err(|e| format!("seed {seed}: commit failed: {e}"))?;
            for (key, val) in ops {
                model.insert(key, Some(val));
            }
        } else {
            db.abort(dtx).map_err(|e| format!("seed {seed}: abort failed: {e}"))?;
        }
        Ok(())
    };

    for _ in 0..rng.gen_range(5..15usize) {
        workload_step(&db, &mut rng, &mut model)?;
    }

    let crash_rounds = rng.gen_range(2..5usize);
    let mut resolved_commit = 0usize;
    let mut resolved_abort = 0usize;
    for round in 0..crash_rounds {
        // Build a transaction guaranteed to span ≥ 2 shards.
        let mut dtx = db.begin();
        let mut ops: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut salt = 0u8;
        while dtx.writers().len() < 2 && salt < 64 {
            let key = vec![b'x', round as u8, salt, rng.gen_range(0..=255u8)];
            let mut val = vec![0u8; rng.gen_range(8..24usize)];
            rng.fill_bytes(&mut val);
            db.write(&mut dtx, rel, &key, &val)
                .map_err(|e| format!("seed {seed}: victim write failed: {e}"))?;
            ops.push((key, val));
            salt += 1;
        }
        if dtx.writers().len() < 2 {
            return Err(format!("seed {seed}: could not span two shards in 64 keys"));
        }
        let gtxn = dtx.gtxn();
        let writers: Vec<usize> = dtx.writers();
        let parts: Vec<u32> = writers.iter().map(|s| *s as u32).collect();
        // Prepare phase, by hand.
        for &s in &writers {
            let txn = dtx.local_txn(s).expect("writer has a local txn");
            db.shards()[s].prepare(txn).map_err(|e| format!("seed {seed}: prepare failed: {e}"))?;
            db.shards()[s]
                .log_2pc(&LogRecord::TwoPcPrepare {
                    gtxn,
                    txn,
                    shard: s as u32,
                    participants: parts.clone(),
                })
                .map_err(|e| format!("seed {seed}: prepare log failed: {e}"))?;
        }
        // The decision reaches a seeded prefix of the participants —
        // possibly none (crash before the commit point).
        let decided = rng.gen_range(0..=writers.len() as u64) as usize;
        for &s in writers.iter().take(decided) {
            db.shards()[s]
                .log_2pc(&LogRecord::TwoPcDecision { gtxn, commit: true })
                .map_err(|e| format!("seed {seed}: decision log failed: {e}"))?;
        }
        drop(dtx);
        // Crash: one seeded participant, or the whole deployment.
        if rng.gen_bool(0.6) {
            let victim = writers[rng.gen_range(0..writers.len() as u64) as usize];
            db.crash_shard(victim)
                .map_err(|e| format!("seed {seed}: shard {victim} recovery failed: {e}"))?;
        } else {
            db = db
                .crash_and_recover()
                .map_err(|e| format!("seed {seed}: deployment recovery failed: {e}"))?;
        }
        // The contract: decision durable anywhere → COMMIT everywhere;
        // no decision anywhere → presumed ABORT everywhere. Either way,
        // every key of the transaction agrees (atomicity).
        let expect_commit = decided > 0;
        if expect_commit {
            resolved_commit += 1;
            for (key, val) in &ops {
                model.insert(key.clone(), Some(val.clone()));
            }
        } else {
            resolved_abort += 1;
        }
        check_shard_model(&db, rel, &model, seed)
            .map_err(|e| format!("{e} [round {round}, decided {decided}/{}]", writers.len()))?;
        if !expect_commit {
            for (key, _) in &ops {
                let got = shard_read_latest(&db, rel, key)
                    .map_err(|e| format!("seed {seed}: read failed: {e}"))?;
                if got.is_some() && model.get(key).is_none_or(|v| v.is_none()) {
                    return Err(format!(
                        "seed {seed}: presumed-abort leaked a write: key {key:02x?}"
                    ));
                }
            }
        }
        assert_shard_audit_clean(&db, seed, &format!("round {round} post-recovery"))?;
        // The deployment keeps working between crashes.
        for _ in 0..rng.gen_range(1..5usize) {
            workload_step(&db, &mut rng, &mut model)?;
        }
    }

    // Final check: model intact, full sealing audit clean on every shard.
    for shard in db.shards() {
        shard
            .engine()
            .run_stamper()
            .map_err(|e| format!("seed {seed}: final stamper failed: {e}"))?;
    }
    check_shard_model(&db, rel, &model, seed)?;
    let dep = db.audit().map_err(|e| format!("seed {seed}: final audit errored: {e}"))?;
    if !dep.is_clean() {
        return Err(format!("seed {seed}: final sealing audit dirty: {:?}", dep.all_violations()));
    }
    Ok(ShardTortureOutcome {
        seed,
        shards,
        crash_rounds,
        resolved_commit,
        resolved_abort,
        audit_clean: dep.is_clean(),
    })
}

/// Runs sharded schedules for `seeds`, failing fast with the first
/// violated seed.
pub fn run_shard_campaign(
    seeds: impl IntoIterator<Item = u64>,
) -> Result<Vec<ShardTortureOutcome>, String> {
    let mut out = Vec::new();
    for seed in seeds {
        out.push(run_shard_schedule(seed)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::run_schedule;

    /// Replays one seed under a debugger/instrumentation:
    /// `CCDB_REPLAY_SEED=<n> cargo test -p ccdb-bench replay_one_seed -- --ignored --nocapture`
    #[test]
    #[ignore = "manual replay tool; set CCDB_REPLAY_SEED"]
    fn replay_one_seed() {
        let seed: u64 = std::env::var("CCDB_REPLAY_SEED")
            .expect("set CCDB_REPLAY_SEED")
            .parse()
            .expect("CCDB_REPLAY_SEED must be a u64");
        match run_schedule(seed) {
            Ok(o) => println!("{o:#?}"),
            Err(e) => panic!("{e}"),
        }
    }
}
