//! Minimal `parking_lot`-style wrappers over `std::sync` primitives.
//!
//! The workspace must build with **zero external registry access**, so the
//! `parking_lot` crate cannot be a dependency. This module provides the small
//! API surface the codebase actually uses — `Mutex::lock`, `RwLock::read`,
//! `RwLock::write` returning guards directly (no `Result`) — backed by the
//! standard library. Poisoning is deliberately ignored: a panic while holding
//! a lock in this codebase is a test failure in its own right, and the
//! fault-injection harness intentionally aborts runs mid-operation and then
//! re-opens state from *disk*, never through a poisoned in-memory lock.

use std::sync;
use std::sync::atomic::{AtomicUsize, Ordering};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Applies `f` to every item on a scoped worker pool of at most `threads`
/// OS threads, returning the outputs **in item order**.
///
/// This is the workspace's only fan-out primitive (no rayon: the build is
/// offline). Work is distributed by an atomic next-item cursor, so long and
/// short tasks share the pool without static partitioning; determinism is
/// preserved because output slot `i` always holds `f(items[i])` regardless
/// of which worker ran it. With `threads <= 1` (or one item) everything runs
/// inline on the caller's thread — the sequential semantics are *identical*,
/// which the parallel auditor's differential tests rely on.
///
/// Threads are scoped (`std::thread::scope`), so `f` may borrow from the
/// caller's stack. A panic in any task propagates to the caller after the
/// scope joins.
pub fn parallel_map<I, O, F>(threads: usize, items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Each slot carries its input in and its output back; the mutex is
    // uncontended (one worker claims a slot exactly once via the cursor).
    let slots: Vec<Mutex<(Option<I>, Option<O>)>> =
        items.into_iter().map(|i| Mutex::new((Some(i), None))).collect();
    let next = &AtomicUsize::new(0);
    let f = &f;
    let slots_ref = &slots;
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots_ref[i].lock().0.take().expect("slot claimed once");
                let out = f(item);
                slots_ref[i].lock().1 = Some(out);
            });
        }
    });
    slots.into_iter().map(|m| m.into_inner().1.expect("worker completed slot")).collect()
}

/// A mutex whose `lock()` returns the guard directly, ignoring poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable paired with [`Mutex`], ignoring poisoning like the
/// rest of this module. Used by the engine's group-commit pipeline to park
/// follower committers while a leader flushes the WAL batch.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard while parked.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until notified or `dur` elapses. Returns the re-acquired guard
    /// and whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.0.wait_timeout(guard, dur) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(e) => {
                let (g, t) = e.into_inner();
                (g, t.timed_out())
            }
        }
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all parked waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_notifies_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                done = cv.wait(done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_expires() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock();
        let (_g, timed_out) = cv.wait_timeout(g, std::time::Duration::from_millis(5));
        assert!(timed_out);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [0, 1, 2, 4, 8] {
            let out = parallel_map(threads, items.clone(), |x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn parallel_map_runs_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // With 4 threads and 4 sleeping tasks, at least two tasks must
        // overlap (high-water mark of in-flight tasks > 1).
        let inflight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        parallel_map(4, vec![(); 4], |()| {
            let cur = inflight.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(cur, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            inflight.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) > 1, "tasks never overlapped");
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
