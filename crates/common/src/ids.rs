//! Strongly-typed identifiers used across the workspace.
//!
//! Each id is a transparent newtype over an integer with an explicit
//! byte-level encoding, so that on-disk formats and the compliance log can
//! round-trip them without ambiguity.

use core::fmt;

/// A transaction identifier, assigned monotonically by the transaction
/// manager. `TxnId(0)` is reserved and never assigned to a real transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(pub u64);

impl TxnId {
    /// The reserved "no transaction" id.
    pub const NONE: TxnId = TxnId(0);

    /// Returns `true` if this is a real (assigned) transaction id.
    #[inline]
    pub fn is_real(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// A page number within a database file. Pages are never reused within a
/// database lifetime (a requirement of the hash-page-on-read refinement: the
/// auditor replays per-PGNO histories, so a PGNO must denote one page
/// lineage).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNo(pub u64);

impl PageNo {
    /// Sentinel for "no page" (e.g. the end of a version chain).
    pub const INVALID: PageNo = PageNo(u64::MAX);

    /// Returns `true` unless this is the [`PageNo::INVALID`] sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != PageNo::INVALID
    }
}

impl fmt::Debug for PageNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "pg{}", self.0)
        } else {
            write!(f, "pg-invalid")
        }
    }
}

impl fmt::Display for PageNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A relation (table or index) identifier, assigned by the catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RelId(pub u32);

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel{}", self.0)
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A log sequence number in the write-ahead log: the byte offset of a record
/// in the logical log stream.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The LSN used for pages never touched by a logged operation.
    pub const ZERO: Lsn = Lsn(0);
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_none_is_not_real() {
        assert!(!TxnId::NONE.is_real());
        assert!(TxnId(1).is_real());
    }

    #[test]
    fn page_no_invalid_sentinel() {
        assert!(!PageNo::INVALID.is_valid());
        assert!(PageNo(0).is_valid());
        assert!(PageNo(12).is_valid());
    }

    #[test]
    fn ids_order_by_value() {
        assert!(TxnId(1) < TxnId(2));
        assert!(Lsn(5) < Lsn(6));
        assert!(PageNo(3) < PageNo(4));
        assert!(RelId(1) < RelId(9));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", TxnId(7)), "txn#7");
        assert_eq!(format!("{:?}", PageNo(7)), "pg7");
        assert_eq!(format!("{:?}", PageNo::INVALID), "pg-invalid");
        assert_eq!(format!("{:?}", RelId(7)), "rel7");
        assert_eq!(format!("{:?}", Lsn(7)), "lsn:7");
    }
}
