//! Fixed-layout binary codec helpers.
//!
//! Every persistent structure in ccdb — slotted pages, WAL records,
//! compliance-log records, snapshots — is encoded by hand with these helpers
//! rather than a serialization framework. The compliance auditor must be able
//! to parse raw bytes found on disk (possibly tampered bytes), so decoding is
//! defensive throughout: every read is bounds-checked and returns
//! [`Error::Corruption`] instead of panicking on malformed input.

use crate::error::{Error, Result};

/// An append-only byte buffer with explicit little-endian primitives.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    /// Creates a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter { buf: Vec::with_capacity(cap) }
    }

    /// Appends a single byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with no length prefix.
    #[inline]
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    #[inline]
    pub fn put_len_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.put_bytes(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    #[inline]
    pub fn put_str(&mut self, v: &str) {
        self.put_len_bytes(v.as_bytes());
    }

    /// Current encoded length.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    #[inline]
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// A bounds-checked cursor over an immutable byte slice.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor position.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Returns `true` when all bytes have been consumed.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::corruption(format!(
                "truncated record: wanted {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Reads exactly `n` raw bytes.
    #[inline]
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed byte string, validating the length
    /// against the remaining input (so hostile lengths cannot over-allocate).
    #[inline]
    pub fn get_len_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.get_u32()? as usize;
        if n > self.remaining() {
            return Err(Error::corruption(format!(
                "length prefix {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let b = self.get_len_bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| Error::corruption("length-prefixed string is not valid UTF-8"))
    }
}

/// A simple non-cryptographic 32-bit checksum (FNV-1a) used for page and log
/// torn-write detection. This is *not* a tamper defense — tamper evidence
/// comes from the cryptographic hashes on WORM — it exists only to catch
/// accidental corruption, matching the "integrity checker" role the paper
/// ascribes to the underlying DBMS.
#[inline]
pub fn checksum32(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_len_bytes(b"hello");
        w.put_str("world");
        let v = w.into_vec();
        let mut r = ByteReader::new(&v);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_len_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "world");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_error() {
        let v = vec![1u8, 2];
        let mut r = ByteReader::new(&v);
        assert!(r.get_u32().is_err());
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // claims 4 GiB follow
        let v = w.into_vec();
        let mut r = ByteReader::new(&v);
        assert!(r.get_len_bytes().is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.put_len_bytes(&[0xFF, 0xFE]);
        let v = w.into_vec();
        let mut r = ByteReader::new(&v);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn checksum_differs_on_change() {
        let a = checksum32(b"abc");
        let b = checksum32(b"abd");
        assert_ne!(a, b);
        assert_eq!(checksum32(b"abc"), a);
    }

    #[test]
    fn position_tracking() {
        let v = vec![0u8; 10];
        let mut r = ByteReader::new(&v);
        assert_eq!(r.position(), 0);
        r.get_u32().unwrap();
        assert_eq!(r.position(), 4);
        assert_eq!(r.remaining(), 6);
    }
}
