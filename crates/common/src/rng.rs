//! A small deterministic PRNG so the workspace needs no external `rand`.
//!
//! [`SplitMix64`] (Steele, Lea & Flood, OOPSLA '14) is the mixing function
//! used to seed xoshiro generators; on its own it is a perfectly serviceable
//! 64-bit generator for workload drivers, fault schedules and property tests.
//! It is *not* cryptographic — the crypto crate keeps its own primitives.
//!
//! Determinism contract: for a given seed, the sequence of values produced by
//! a given sequence of method calls is stable across platforms and releases.
//! The crash-torture harness relies on this to replay failures from a printed
//! seed, so treat any change to the output stream as a breaking change.

/// A seeded SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Named for drop-in source
    /// compatibility with `rand::SeedableRng`.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in a range; accepts `lo..hi` and `lo..=hi` for any
    /// integer type used in the workspace.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of randomness is plenty for test probabilities.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.below(slice.len() as u64) as usize]
    }

    /// Uniform in `[0, bound)` via Lemire-style rejection (debiased).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            let (hi, lo) = {
                let wide = (v as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }
}

/// Ranges `gen_range` can sample from.
pub trait SampleRange {
    /// The produced integer type.
    type Output;
    /// Draws a uniform sample.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SplitMix64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_answer() {
        // Reference values from the canonical SplitMix64 with seed 0.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(r.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let z = r.gen_range(0..=u64::MAX);
            let _ = z;
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SplitMix64::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = SplitMix64::seed_from_u64(11);
        let mut b = SplitMix64::seed_from_u64(11);
        let mut x = [0u8; 13];
        let mut y = [0u8; 13];
        a.fill_bytes(&mut x);
        b.fill_bytes(&mut y);
        assert_eq!(x, y);
        assert_ne!(x, [0u8; 13]);
    }
}
