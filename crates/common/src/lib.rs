//! Shared foundation types for the ccdb workspace.
//!
//! This crate hosts the vocabulary the rest of the system is written in:
//! identifiers ([`TxnId`], [`PageNo`], [`RelId`], [`Lsn`]), timestamps and the
//! [`Clock`] abstraction (a deterministic [`VirtualClock`] drives every test
//! and benchmark; [`SystemClock`] exists for wall-time runs), the workspace
//! [`Error`] type, and the fixed-layout byte codec helpers used by every
//! on-disk format.
//!
//! Nothing here knows about databases; it is deliberately dependency-free.

pub mod codec;
pub mod error;
pub mod ids;
pub mod rng;
pub mod sync;
pub mod time;

pub use codec::{ByteReader, ByteWriter};
pub use error::{Error, Result};
pub use ids::{Lsn, PageNo, RelId, TxnId};
pub use rng::SplitMix64;
pub use time::{Clock, ClockRef, Duration, SystemClock, Timestamp, VirtualClock};
