//! Timestamps and the clock abstraction.
//!
//! Every time-dependent decision in the system — commit times, regret-interval
//! sweeps, witness-file heartbeats, tuple expiry — reads time through the
//! [`Clock`] trait. The default in tests and benchmarks is [`VirtualClock`],
//! which only moves when told to, making regret-interval and expiry logic
//! exactly reproducible. The WORM server holds its *own* trusted clock (the
//! "compliance clock" of real WORM filers); the DBMS-side clock is untrusted
//! in the threat model, which is why the auditor cross-checks DBMS-claimed
//! times against WORM file create-times.

use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in time, in microseconds since an arbitrary epoch.
///
/// Microsecond resolution matches the paper's needs: regret intervals are
/// minutes, commit times need only be strictly ordered.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// A span of time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Timestamp {
    /// The zero timestamp (the epoch).
    pub const ZERO: Timestamp = Timestamp(0);
    /// The maximum representable timestamp; used as "never expires".
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a duration.
    #[inline]
    pub fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// The duration elapsed since `earlier` (zero if `earlier` is later).
    #[inline]
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    /// Builds a duration from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Duration {
        Duration(m * 60 * 1_000_000)
    }

    /// Builds a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us)
    }

    /// Scales the duration by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t@{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

/// A source of time. Implementations must be monotonic: successive `now()`
/// calls never go backwards.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> Timestamp;
}

/// Shared handle to a clock.
pub type ClockRef = Arc<dyn Clock>;

/// A deterministic clock that advances only when told to, plus an optional
/// automatic per-read tick so that successive reads are strictly increasing
/// when strict ordering is required (commit-time assignment).
pub struct VirtualClock {
    now_us: AtomicU64,
    tick_us: u64,
}

impl VirtualClock {
    /// Creates a clock at time zero that does not auto-advance.
    pub fn new() -> VirtualClock {
        VirtualClock { now_us: AtomicU64::new(0), tick_us: 0 }
    }

    /// Creates a clock at time zero that advances by `tick` on every read,
    /// guaranteeing strictly increasing observations.
    pub fn ticking(tick: Duration) -> VirtualClock {
        VirtualClock { now_us: AtomicU64::new(0), tick_us: tick.0.max(1) }
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.now_us.fetch_add(d.0, Ordering::SeqCst);
    }

    /// Sets the clock to `t` if `t` is later than the current time
    /// (monotonicity is preserved; earlier values are ignored).
    pub fn advance_to(&self, t: Timestamp) {
        self.now_us.fetch_max(t.0, Ordering::SeqCst);
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Timestamp {
        if self.tick_us == 0 {
            Timestamp(self.now_us.load(Ordering::SeqCst))
        } else {
            Timestamp(self.now_us.fetch_add(self.tick_us, Ordering::SeqCst) + self.tick_us)
        }
    }
}

/// A wall-clock implementation: UNIX-epoch microseconds at construction plus
/// an [`std::time::Instant`] delta, so timestamps are monotone within the
/// process AND advance across restarts. The compliance clock must never run
/// backwards between process lifetimes — an `Instant`-only anchor restarts
/// at zero and makes every post-restart commit look backdated to the
/// auditor (`CommitTimesNotMonotonic`).
pub struct SystemClock {
    /// Wall-clock µs since the UNIX epoch when this clock was built.
    wall_origin_us: u64,
    /// Monotonic anchor; deltas from here are immune to wall-clock steps.
    origin: std::time::Instant,
}

impl SystemClock {
    /// Creates a clock anchored at "now".
    pub fn new() -> SystemClock {
        let wall_origin_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        SystemClock { wall_origin_us, origin: std::time::Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.wall_origin_us + self.origin.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_manual() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Timestamp(0));
        assert_eq!(c.now(), Timestamp(0));
        c.advance(Duration::from_secs(3));
        assert_eq!(c.now(), Timestamp(3_000_000));
    }

    #[test]
    fn ticking_clock_is_strictly_increasing() {
        let c = VirtualClock::ticking(Duration::from_micros(5));
        let a = c.now();
        let b = c.now();
        assert!(b > a);
        assert_eq!(b.0 - a.0, 5);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = VirtualClock::new();
        c.advance_to(Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
        c.advance_to(Timestamp(50)); // ignored: would move backwards
        assert_eq!(c.now(), Timestamp(100));
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::from_secs(2).0, 2_000_000);
        assert_eq!(Duration::from_mins(1).0, 60_000_000);
        assert_eq!(Duration::from_mins(5), Duration::from_secs(300));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(10);
        assert_eq!(t.saturating_add(Duration(5)), Timestamp(15));
        assert_eq!(t.saturating_sub(Duration(20)), Timestamp(0));
        assert_eq!(Timestamp(30).since(Timestamp(10)), Duration(20));
        assert_eq!(Timestamp(10).since(Timestamp(30)), Duration(0));
    }

    #[test]
    fn system_clock_moves_forward() {
        let c = SystemClock::new();
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c.now();
        assert!(b > a);
    }

    #[test]
    fn system_clock_survives_restarts() {
        // The compliance clock must not rewind between process lifetimes:
        // an Instant-anchored clock restarts at ~0 and makes every
        // post-restart commit look backdated to the auditor. Anchoring to
        // UNIX-epoch wall time means a fresh clock (a "restarted process")
        // never reads earlier than an older one.
        let first = SystemClock::new();
        let before = first.now();
        // Well past 2017 in µs: proves the anchor is the epoch, not startup.
        assert!(before.0 > 1_500_000_000_000_000, "clock anchored at process start: {before:?}");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let restarted = SystemClock::new();
        assert!(restarted.now() >= before, "fresh clock rewound behind an older one");
    }
}
