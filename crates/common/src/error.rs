//! The workspace error type.

use core::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised anywhere in the ccdb stack.
///
/// The variants are deliberately coarse: the detailed, typed reporting of
/// *tampering* lives in the auditor's `Violation` type, not here. `Error` is
/// for operational failures (I/O, corrupt encodings, contract violations).
#[derive(Debug)]
pub enum Error {
    /// An operating-system I/O failure, with the context in which it arose.
    Io { context: String, source: std::io::Error },
    /// A stored structure failed to decode or violated its own invariants.
    Corruption(String),
    /// An operation was rejected by the WORM server's immutability rules.
    WormViolation(String),
    /// An attempt to store a tuple/record that cannot fit in a page.
    TupleTooLarge { size: usize, max: usize },
    /// The requested item does not exist.
    NotFound(String),
    /// The operation conflicts with the current transaction state
    /// (e.g. using a transaction handle after commit/abort).
    InvalidTransactionState(String),
    /// A lock could not be acquired (deadlock-avoidance abort).
    LockConflict(String),
    /// The operation violates a configuration or usage contract.
    Invalid(String),
    /// Compliance processing failed in a way that must halt transaction
    /// processing (the paper: "if at any point we are unable to write to L,
    /// transaction processing must halt until the problem is fixed").
    ComplianceHalt(String),
    /// A failure injected by the deterministic fault layer
    /// (`ccdb_storage::fault`). Distinguished from real I/O errors so the
    /// torture harness can tell a scheduled fault from an unexpected one.
    Injected(String),
}

impl Error {
    /// Wraps an [`std::io::Error`] with a human-readable context string.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Error {
        Error::Io { context: context.into(), source }
    }

    /// Builds a [`Error::Corruption`] from anything displayable.
    pub fn corruption(msg: impl Into<String>) -> Error {
        Error::Corruption(msg.into())
    }

    /// Builds an [`Error::Injected`] (deterministic fault layer).
    pub fn injected(msg: impl Into<String>) -> Error {
        Error::Injected(msg.into())
    }

    /// `true` if this error originated in the fault-injection layer.
    pub fn is_injected(&self) -> bool {
        matches!(self, Error::Injected(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { context, source } => write!(f, "I/O error ({context}): {source}"),
            Error::Corruption(m) => write!(f, "corruption detected: {m}"),
            Error::WormViolation(m) => write!(f, "WORM immutability violation: {m}"),
            Error::TupleTooLarge { size, max } => {
                write!(f, "tuple of {size} bytes exceeds page capacity {max}")
            }
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidTransactionState(m) => write!(f, "invalid transaction state: {m}"),
            Error::LockConflict(m) => write!(f, "lock conflict: {m}"),
            Error::Invalid(m) => write!(f, "invalid operation: {m}"),
            Error::ComplianceHalt(m) => write!(f, "compliance halt: {m}"),
            Error::Injected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::io("reading page 7", std::io::Error::other("x"));
        let s = e.to_string();
        assert!(s.contains("reading page 7"));
    }

    #[test]
    fn corruption_constructor() {
        let e = Error::corruption("bad magic");
        assert!(matches!(e, Error::Corruption(_)));
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn source_chains_io() {
        use std::error::Error as _;
        let e = Error::io("ctx", std::io::Error::other("y"));
        assert!(e.source().is_some());
        assert!(Error::corruption("z").source().is_none());
    }
}
