//! Session lifecycle and multi-tenant service tests: disconnect cleanup,
//! idle reaping, admission control, ownership fencing, and the metrics
//! endpoint — all over real TCP loopback connections.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use ccdb_common::{ClockRef, Duration, VirtualClock};
use ccdb_core::db::{ComplianceConfig, Mode};
use ccdb_metrics::http_get;
use ccdb_rpc::client::{is_admission_rejected, Client, ClientPool};
use ccdb_server::{Server, ServerConfig};

fn tmp(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "ccdb-server-{}-{}-{}",
        std::process::id(),
        tag,
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn cfg() -> ComplianceConfig {
    ComplianceConfig {
        mode: Mode::LogConsistent,
        regret_interval: Duration::from_mins(5),
        cache_pages: 256,
        fsync: false,
        ..ComplianceConfig::default()
    }
}

fn clock() -> ClockRef {
    Arc::new(VirtualClock::ticking(Duration::from_micros(50)))
}

fn start(tag: &str, tweak: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut config = ServerConfig::new(tmp(tag), cfg());
    tweak(&mut config);
    Server::start(config, clock()).unwrap()
}

/// Polls `cond` for up to 5 s; panics with `what` on timeout.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + StdDuration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(StdDuration::from_millis(10));
    }
}

#[test]
fn disconnect_mid_txn_aborts_and_releases_slots() {
    let server = start("disc", |_| {});
    let addr = server.addr().to_string();

    let mut c = Client::connect(&addr, "acme").unwrap();
    let rel = c.create_relation("orders").unwrap();
    let txn = c.begin().unwrap();
    c.write(txn, rel, b"k", b"v").unwrap();
    assert_eq!(server.inflight_txns(), 1);
    assert_eq!(server.session_count(), 1);
    let db = server.tenants().tenant("acme").unwrap();
    assert_eq!(db.engine().active_txn_count(), 1);

    // Drop the connection with the transaction still open: the connection
    // thread must abort it, release the admission slot, and deregister.
    drop(c);
    wait_until("disconnect cleanup", || server.session_count() == 0 && server.inflight_txns() == 0);
    assert_eq!(db.engine().active_txn_count(), 0, "engine still holds the orphaned txn");

    // The uncommitted write is invisible to a fresh session.
    let mut c = Client::connect(&addr, "acme").unwrap();
    let t2 = c.begin().unwrap();
    assert_eq!(c.read(t2, rel, b"k").unwrap(), None);
    c.abort(t2).unwrap();
}

#[test]
fn idle_sessions_are_reaped_and_their_txns_aborted() {
    let server = start("idle", |cfg| {
        cfg.idle_timeout = StdDuration::from_millis(150);
        cfg.reap_interval = StdDuration::from_millis(25);
    });
    let addr = server.addr().to_string();

    let mut c = Client::connect(&addr, "acme").unwrap();
    let _txn = c.begin().unwrap();
    assert_eq!(server.inflight_txns(), 1);

    // Go idle past the timeout: the reaper shuts the socket down and the
    // connection thread runs the same cleanup as a client disconnect.
    wait_until("idle reap", || {
        server.sessions_reaped() >= 1 && server.session_count() == 0 && server.inflight_txns() == 0
    });

    // The reaped session's socket is dead from the client side too.
    assert!(c.ping().is_err(), "reaped session still answers");
}

#[test]
fn admission_control_rejects_with_typed_error() {
    let server = start("admit", |cfg| cfg.max_inflight_txns = 2);
    let addr = server.addr().to_string();

    let mut c = Client::connect(&addr, "acme").unwrap();
    let rel = c.create_relation("orders").unwrap();
    let t1 = c.begin().unwrap();
    let t2 = c.begin().unwrap();

    let err = c.begin().unwrap_err();
    assert!(is_admission_rejected(&err), "wrong error: {err}");
    assert_eq!(server.admission_rejections(), 1);

    // Resolving a transaction frees its slot.
    c.write(t1, rel, b"k", b"v").unwrap();
    c.commit(t1).unwrap();
    let t3 = c.begin().unwrap();
    c.abort(t2).unwrap();
    c.abort(t3).unwrap();
    assert_eq!(server.inflight_txns(), 0);
}

#[test]
fn sessions_cannot_touch_each_others_transactions() {
    let server = start("fence", |_| {});
    let addr = server.addr().to_string();

    let mut a = Client::connect(&addr, "acme").unwrap();
    let mut b = Client::connect(&addr, "acme").unwrap();
    let rel = a.create_relation("orders").unwrap();
    let txn = a.begin().unwrap();

    // Session B may not write under, read under, commit, or abort A's
    // transaction — even within the same tenant.
    assert!(b.write(txn, rel, b"k", b"v").is_err());
    assert!(b.read(txn, rel, b"k").is_err());
    assert!(b.commit(txn).is_err());
    assert!(b.abort(txn).is_err());

    // A's handle is unharmed by B's attempts.
    a.write(txn, rel, b"k", b"v").unwrap();
    a.commit(txn).unwrap();
}

#[test]
fn requests_before_hello_are_rejected() {
    // A raw connection that skips the handshake gets the typed NoSession
    // error for anything but Hello.
    use ccdb_rpc::proto::{read_frame, write_frame, ErrorCode, Request, Response};
    let server = start("nohello", |_| {});
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &Request::Begin.encode()).unwrap();
    let payload = read_frame(&mut stream).unwrap().unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Err { code, .. } => assert_eq!(code, ErrorCode::NoSession),
        other => panic!("expected NoSession error, got {other:?}"),
    }
}

#[test]
fn tenants_are_isolated_and_audit_clean_over_rpc() {
    let server = start("multi", |cfg| {
        cfg.metrics_addr = Some("127.0.0.1:0".to_string());
    });
    let addr = server.addr().to_string();

    // Two tenants, separate sessions, interleaved commits.
    let mut a = Client::connect(&addr, "alpha").unwrap();
    let mut b = Client::connect(&addr, "beta").unwrap();
    let ra = a.create_relation("orders").unwrap();
    let rb = b.create_relation("orders").unwrap();
    for i in 0..20u32 {
        let ta = a.begin().unwrap();
        a.write(ta, ra, &i.to_be_bytes(), b"alpha-val").unwrap();
        a.commit(ta).unwrap();
        let tb = b.begin().unwrap();
        b.write(tb, rb, &i.to_be_bytes(), b"beta-val").unwrap();
        b.commit(tb).unwrap();
    }

    // Each tenant sees only its own data.
    let ta = a.begin().unwrap();
    assert_eq!(a.read(ta, ra, &0u32.to_be_bytes()).unwrap().as_deref(), Some(&b"alpha-val"[..]));
    a.abort(ta).unwrap();
    let tb = b.begin().unwrap();
    assert_eq!(b.read(tb, rb, &0u32.to_be_bytes()).unwrap().as_deref(), Some(&b"beta-val"[..]));
    b.abort(tb).unwrap();

    // Per-tenant audits replay only that tenant's L-stream, and both the
    // serial oracle (dry-run) and the real parallel audit come back clean.
    let (clean, violations) = a.audit(true).unwrap();
    assert!(clean && violations == 0, "alpha serial audit dirty");
    let (clean, _) = a.audit(false).unwrap();
    assert!(clean, "alpha parallel audit dirty");
    let (clean, _) = b.audit(false).unwrap();
    assert!(clean, "beta parallel audit dirty");

    // The shared WORM volume holds both tenants under their namespaces —
    // the root view proves global ordering is still one volume.
    let names: Vec<String> = server.tenants().worm().list("").into_iter().map(|(n, _)| n).collect();
    assert!(names.iter().any(|n| n.starts_with("tenants/alpha/")), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("tenants/beta/")), "{names:?}");

    // The metrics endpoint serves per-tenant commit counters.
    let (status, body) = http_get(server.metrics_addr().unwrap(), "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("# TYPE ccdb_commits_total counter"), "{body}");
    for tenant in ["alpha", "beta"] {
        let line = body
            .lines()
            .find(|l| {
                l.starts_with("ccdb_commits_total") && l.contains(&format!("tenant=\"{tenant}\""))
            })
            .unwrap_or_else(|| panic!("no commit counter for {tenant}:\n{body}"));
        let value: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(value >= 20.0, "{tenant} commits not counted: {line}");
    }
}

/// End-to-end over RPC: the streaming-audit daemon follows the epoch roll
/// and drains its lag; a `ReadVerified` call round-trips through the
/// engine-free `ccdb-verifier`; corrupted proof bytes are rejected; and an
/// out-of-band disk edit raises the daemon's tamper counter, visible on the
/// scrape endpoint.
#[test]
fn streaming_daemon_and_verified_reads_over_rpc() {
    use ccdb_adversary::Mala;
    use ccdb_core::EpochHeadManager;

    let server = start("stream", |cfg| {
        cfg.metrics_addr = Some("127.0.0.1:0".to_string());
        cfg.audit_stream_interval = Some(StdDuration::from_millis(20));
        cfg.audit_stream_deep_every = 1;
    });
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr, "acme").unwrap();
    let rel = c.create_relation("ledger").unwrap();

    // No sealed epoch yet: proof-carrying reads are a typed error.
    assert!(c.read_verified(rel, b"k007").is_err());

    for i in 0..30u32 {
        let t = c.begin().unwrap();
        c.write(t, rel, format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        c.commit(t).unwrap();
    }
    let (clean, _) = c.audit(false).unwrap();
    assert!(clean, "seal audit dirty");

    // The daemon follows the sealed epoch and drains its lag.
    wait_until("daemon follows the sealed epoch", || {
        server
            .audit_stats()
            .get("acme")
            .is_some_and(|s| s.epochs_sealed >= 1 && s.polls > 0 && s.lag_records == 0)
    });
    assert_eq!(server.audit_stats()["acme"].tamper_alerts, 0, "false alarm on honest load");

    // A verified read checks out under the pinned lineage fingerprint —
    // the client needs nothing from the engine to do this.
    let vr = c.read_verified(rel, b"k007").unwrap();
    assert_eq!(vr.epoch, 0);
    assert_eq!(vr.value.as_deref(), Some(&b"v7"[..]));
    let db = server.tenants().tenant("acme").unwrap();
    let fp = EpochHeadManager::new(db.worm().clone(), cfg().auditor_seed).fingerprint(0);
    let proof = vr.proof.as_ref().expect("committed key carries a proof");
    let out =
        ccdb_verifier::verify_read(&vr.head, &vr.sig, &vr.pubkey, Some(&fp), proof, rel.0, b"k007")
            .unwrap();
    assert_eq!(out.value.as_deref(), Some(&b"v7"[..]));
    assert_eq!(out.head.epoch, 0);

    // Corrupting the proof's epoch byte must fail verification.
    let mut bad = proof.clone();
    bad[0] ^= 1;
    assert!(
        ccdb_verifier::verify_read(&vr.head, &vr.sig, &vr.pubkey, Some(&fp), &bad, rel.0, b"k007")
            .is_err(),
        "corrupted proof accepted"
    );

    // An out-of-band edit to the database file is flagged by the daemon's
    // next deep poll and lands on the tamper counter.
    db.engine().run_stamper().unwrap();
    db.engine().clear_cache().unwrap();
    assert!(Mala::new(db.engine().db_path()).alter_tuple_value(b"k007", b"forged").unwrap());
    wait_until("daemon flags the tamper", || {
        server.audit_stats().get("acme").is_some_and(|s| s.tamper_alerts >= 1)
    });

    // The scrape endpoint carries the streaming-audit series per tenant.
    let (status, body) = http_get(server.metrics_addr().unwrap(), "/metrics").unwrap();
    assert_eq!(status, 200);
    for metric in [
        "ccdb_audit_lag_records",
        "ccdb_audit_lag_us",
        "ccdb_epochs_sealed_total",
        "ccdb_tamper_alerts_total",
    ] {
        assert!(
            body.lines().any(|l| l.starts_with(metric) && l.contains("tenant=\"acme\"")),
            "missing {metric} for acme:\n{body}"
        );
    }
    let alerts = body
        .lines()
        .find(|l| l.starts_with("ccdb_tamper_alerts_total") && l.contains("tenant=\"acme\""))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap();
    assert!(alerts >= 1.0, "tamper alert not exported: {alerts}");
}

#[test]
fn pooled_clients_share_connections_under_contention() {
    let server = start("pool", |_| {});
    let addr = server.addr().to_string();
    let pool = ClientPool::new(&addr, "acme", 4);

    {
        let mut c = pool.get().unwrap();
        c.create_relation("orders").unwrap();
    }

    let mut handles = Vec::new();
    for w in 0..8u32 {
        let pool = pool.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..10u32 {
                let mut c = pool.get().unwrap();
                let rel = c.rel_id("orders").unwrap();
                let txn = c.begin().unwrap();
                c.write(txn, rel, &(w * 100 + i).to_be_bytes(), b"v").unwrap();
                c.commit(txn).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // 8 workers shared at most 4 connections, and all 80 commits landed.
    let (idle, live) = pool.counts();
    assert!(live <= 4, "pool over capacity: {live}");
    assert_eq!(idle, live, "all connections back in the pool");
    let db = server.tenants().tenant("acme").unwrap();
    assert!(db.engine().stats().commits >= 80, "lost commits: {}", db.engine().stats().commits);
}
