//! Sharded-deployment service tests: `--shards N` routing over real TCP
//! loopback, cross-shard transactions through the RPC surface, per-shard
//! metrics labels, proof-carrying reads routed by the shard map, and the
//! audit daemon's auto-seal policy (lag- and age-triggered sealing audits).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use ccdb_common::{ClockRef, Duration, VirtualClock};
use ccdb_core::db::{ComplianceConfig, Mode};
use ccdb_metrics::http_get;
use ccdb_rpc::client::Client;
use ccdb_server::{Server, ServerConfig};

fn tmp(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "ccdb-shardsrv-{}-{}-{}",
        std::process::id(),
        tag,
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn cfg() -> ComplianceConfig {
    ComplianceConfig {
        mode: Mode::LogConsistent,
        regret_interval: Duration::from_mins(5),
        cache_pages: 256,
        fsync: false,
        ..ComplianceConfig::default()
    }
}

fn clock() -> ClockRef {
    Arc::new(VirtualClock::ticking(Duration::from_micros(50)))
}

fn start(tag: &str, tweak: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut config = ServerConfig::new(tmp(tag), cfg());
    tweak(&mut config);
    Server::start(config, clock()).unwrap()
}

/// Polls `cond` for up to 5 s; panics with `what` on timeout.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + StdDuration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(StdDuration::from_millis(10));
    }
}

/// A two-shard deployment behind the unchanged RPC protocol: cross-shard
/// transactions commit atomically, aborts leave nothing behind, every
/// session sees the single deployment regardless of its Hello name, both
/// audit strategies agree the log is clean, and the scrape endpoint carries
/// per-shard series.
#[test]
fn sharded_server_serves_cross_shard_txns_over_rpc() {
    let server = start("rpc", |cfg| {
        cfg.shards = 2;
        cfg.metrics_addr = Some("127.0.0.1:0".to_string());
    });
    let addr = server.addr().to_string();
    assert!(server.sharded().is_some(), "shards=2 must select the sharded deployment");

    let mut c = Client::connect(&addr, "acme").unwrap();
    let rel = c.create_relation("orders").unwrap();
    for round in 0..20u32 {
        let t = c.begin().unwrap();
        // Eight keys fan across both shards on every round.
        for k in 0..8u32 {
            let key = format!("r{round:02}-k{k}");
            c.write(t, rel, key.as_bytes(), format!("v{round}.{k}").as_bytes()).unwrap();
            // Reads inside the transaction see its own uncommitted writes.
            assert_eq!(
                c.read(t, rel, key.as_bytes()).unwrap().as_deref(),
                Some(format!("v{round}.{k}").as_bytes())
            );
        }
        c.commit(t).unwrap();
    }

    // An aborted cross-shard transaction leaves no trace on any shard.
    let t = c.begin().unwrap();
    for k in 0..8u32 {
        c.write(t, rel, format!("gone-{k}").as_bytes(), b"nope").unwrap();
    }
    c.abort(t).unwrap();

    // A second session under a different Hello name reads the same
    // deployment: sharded mode is single-tenant by construction.
    let mut c2 = Client::connect(&addr, "other-name").unwrap();
    let rel2 = c2.rel_id("orders").unwrap();
    assert_eq!(rel2, rel);
    let t = c2.begin().unwrap();
    assert_eq!(c2.read(t, rel, b"r07-k3").unwrap().as_deref(), Some(&b"v7.3"[..]));
    assert_eq!(c2.read(t, rel, b"gone-2").unwrap(), None);
    c2.abort(t).unwrap();

    // Both shards actually took writes — the fan-out was real.
    let db = server.sharded().unwrap();
    for (i, shard) in db.shards().iter().enumerate() {
        assert!(shard.engine().stats().commits > 0, "shard {i} took no commits");
    }

    // Serial oracle and parallel deployment audit agree and both are clean.
    let serial = c.audit(true).unwrap();
    let parallel = c.audit(false).unwrap();
    assert_eq!(serial, parallel, "serial and parallel audits disagree");
    assert!(serial.0, "sharded audit reported {} violations", serial.1);

    // Proof-carrying reads route through the shard map to the owning
    // shard's sealed epoch.
    for key in ["r00-k0", "r19-k7"] {
        let vr = c.read_verified(rel, key.as_bytes()).unwrap();
        assert!(vr.value.is_some(), "verified read lost committed key {key}");
    }

    // The scrape endpoint exposes per-shard commit counters.
    let (status, body) = http_get(server.metrics_addr().unwrap(), "/metrics").unwrap();
    assert_eq!(status, 200);
    for shard in ["shard-0", "shard-1"] {
        let label = format!("shard=\"{shard}\"");
        let value: f64 = body
            .lines()
            .find(|l| l.starts_with("ccdb_commits_total") && l.contains(&label))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no ccdb_commits_total sample for {shard}"));
        assert!(value > 0.0, "zero commit counter for {shard}");
    }
}

/// The auto-seal policy: with `--auto-seal-ms` set, the audit daemon runs a
/// full sealing audit on every shard once the last seal is old enough, so
/// epochs roll without any operator-issued Audit request. The stream
/// auditors follow the rolls without raising alerts, and the sealed epochs
/// serve proof-carrying reads.
#[test]
fn auto_seal_rolls_epochs_without_operator_audits() {
    let server = start("autoseal", |cfg| {
        cfg.shards = 2;
        cfg.metrics_addr = Some("127.0.0.1:0".to_string());
        cfg.audit_stream_interval = Some(StdDuration::from_millis(10));
        cfg.audit_stream_deep_every = 4;
        cfg.auto_seal_ms = Some(40);
    });
    let addr = server.addr().to_string();

    let mut c = Client::connect(&addr, "ops").unwrap();
    let rel = c.create_relation("ledger").unwrap();
    for i in 0..25u32 {
        let t = c.begin().unwrap();
        for k in 0..4u32 {
            c.write(t, rel, format!("i{i:02}-k{k}").as_bytes(), &i.to_le_bytes()).unwrap();
        }
        c.commit(t).unwrap();
    }

    // No Audit request was ever issued, yet the daemon seals both shards.
    wait_until("auto-seal sealed both shards", || server.auto_seals() >= 2);
    wait_until("stream auditors observed the rolls", || {
        let stats = server.audit_stats();
        stats.len() == 2 && stats.values().all(|s| s.epochs_sealed >= 1)
    });
    let alerts: u64 = server.audit_stats().values().map(|s| s.tamper_alerts).sum();
    assert_eq!(alerts, 0, "auto-seal tripped a false tamper alert");

    // The auto-sealed epoch serves verified reads like an operator audit.
    let vr = c.read_verified(rel, b"i00-k0").unwrap();
    assert_eq!(vr.value.as_deref(), Some(&0u32.to_le_bytes()[..]));

    // The policy is visible on the scrape endpoint.
    let (status, body) = http_get(server.metrics_addr().unwrap(), "/metrics").unwrap();
    assert_eq!(status, 200);
    let sealed: f64 = body
        .lines()
        .find(|l| l.starts_with("ccdb_auto_seals_total"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("no ccdb_auto_seals_total sample");
    assert!(sealed >= 2.0, "auto-seal counter not exported: {sealed}");

    // Fresh writes after the auto-seal keep the next epoch clean.
    let t = c.begin().unwrap();
    c.write(t, rel, b"post-seal", b"ok").unwrap();
    c.commit(t).unwrap();
    let (clean, violations) = c.audit(true).unwrap();
    assert!(clean, "post-auto-seal audit reported {violations} violations");
}

/// `--auto-seal-lag`: the record-lag trigger also seals. A zero bound
/// degenerates to "seal on every daemon round", which is exactly the knob's
/// contract (`lag_records >= bound`); the deployment must stay audit-clean
/// and serve reads throughout.
#[test]
fn auto_seal_lag_bound_seals_and_stays_clean() {
    let server = start("autolag", |cfg| {
        cfg.shards = 2;
        cfg.audit_stream_interval = Some(StdDuration::from_millis(10));
        cfg.auto_seal_lag = Some(0);
    });
    let addr = server.addr().to_string();

    let mut c = Client::connect(&addr, "ops").unwrap();
    let rel = c.create_relation("ledger").unwrap();
    for i in 0..10u32 {
        let t = c.begin().unwrap();
        for k in 0..4u32 {
            c.write(t, rel, format!("i{i:02}-k{k}").as_bytes(), &i.to_le_bytes()).unwrap();
        }
        c.commit(t).unwrap();
    }
    wait_until("lag-triggered seals", || server.auto_seals() >= 2);
    let (clean, violations) = c.audit(true).unwrap();
    assert!(clean, "lag-triggered auto-seal left {violations} violations");
    let t = c.begin().unwrap();
    assert_eq!(c.read(t, rel, b"i09-k3").unwrap().as_deref(), Some(&9u32.to_le_bytes()[..]));
    c.abort(t).unwrap();
}
