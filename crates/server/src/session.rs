//! The session table: per-connection state, transaction ownership, and
//! idle-timeout reaping.
//!
//! A session is one TCP connection after its `Hello`. It owns every
//! transaction it begins: only it may operate on those handles, and when
//! it ends — clean disconnect, error, or reap — its open transactions are
//! aborted so no handle leaks engine resources or admission slots.
//!
//! # Reaping
//!
//! The reaper thread never aborts transactions itself: it only calls
//! `shutdown` on an idle session's socket. The connection thread's
//! blocking read then fails, and *that* thread runs the one cleanup path
//! (abort transactions, release admission slots, deregister). One owner
//! per session means no cleanup races between reaper and connection.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ccdb_common::sync::Mutex;
use ccdb_common::TxnId;

/// One connection's server-side state.
struct SessionEntry {
    tenant: String,
    /// Transactions begun and not yet committed/aborted by this session.
    open_txns: Vec<TxnId>,
    /// Last request time, for idle reaping.
    last_active: Instant,
    /// Socket handle the reaper can shut down (never read/written here).
    stream: TcpStream,
}

/// All live sessions.
pub struct SessionTable {
    sessions: Mutex<HashMap<u64, SessionEntry>>,
    next_id: AtomicU64,
    /// Sessions reaped for idleness (metrics).
    pub reaped: AtomicU64,
}

impl SessionTable {
    pub fn new() -> SessionTable {
        SessionTable {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            reaped: AtomicU64::new(0),
        }
    }

    /// Registers a session bound to `tenant`; returns its id.
    pub fn register(&self, tenant: &str, stream: TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().insert(
            id,
            SessionEntry {
                tenant: tenant.to_string(),
                open_txns: Vec::new(),
                last_active: Instant::now(),
                stream,
            },
        );
        id
    }

    /// Removes the session, returning `(tenant, open transactions)` for the
    /// caller to abort. Idempotent: a second call returns `None`.
    pub fn deregister(&self, id: u64) -> Option<(String, Vec<TxnId>)> {
        self.sessions.lock().remove(&id).map(|e| (e.tenant, e.open_txns))
    }

    /// Marks activity (called on every request).
    pub fn touch(&self, id: u64) {
        if let Some(e) = self.sessions.lock().get_mut(&id) {
            e.last_active = Instant::now();
        }
    }

    /// Records that `txn` is owned by session `id`.
    pub fn track_txn(&self, id: u64, txn: TxnId) {
        if let Some(e) = self.sessions.lock().get_mut(&id) {
            e.open_txns.push(txn);
        }
    }

    /// Removes `txn` from session `id`'s open set; `false` if the session
    /// does not own it (the dispatch layer turns that into a typed error —
    /// one session cannot commit another's transaction).
    pub fn untrack_txn(&self, id: u64, txn: TxnId) -> bool {
        let mut sessions = self.sessions.lock();
        match sessions.get_mut(&id) {
            Some(e) => match e.open_txns.iter().position(|t| *t == txn) {
                Some(i) => {
                    e.open_txns.swap_remove(i);
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Whether session `id` owns `txn`.
    pub fn owns_txn(&self, id: u64, txn: TxnId) -> bool {
        self.sessions.lock().get(&id).map(|e| e.open_txns.contains(&txn)).unwrap_or(false)
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shuts down the socket of every session idle longer than
    /// `idle_timeout`; returns how many were shut down. The connection
    /// threads observe the dead socket and run their normal cleanup.
    pub fn reap_idle(&self, idle_timeout: std::time::Duration) -> usize {
        let now = Instant::now();
        let sessions = self.sessions.lock();
        let mut reaped = 0;
        for e in sessions.values() {
            if now.duration_since(e.last_active) >= idle_timeout {
                let _ = e.stream.shutdown(std::net::Shutdown::Both);
                reaped += 1;
            }
        }
        drop(sessions);
        if reaped > 0 {
            self.reaped.fetch_add(reaped as u64, Ordering::Relaxed);
        }
        reaped
    }

    /// Shuts down every session's socket (server shutdown).
    pub fn shutdown_all(&self) {
        for e in self.sessions.lock().values() {
            let _ = e.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Default for SessionTable {
    fn default() -> Self {
        SessionTable::new()
    }
}
