//! The multi-tenant compliant-DB service: TCP front-end, session table,
//! admission control, and metrics, assembled around a
//! [`TenantRegistry`].
//!
//! # Shape
//!
//! One process hosts many tenants. Each tenant is a full [`CompliantDb`]
//! (own engine, catalog, retention, compliance-log namespace on the shared
//! WORM volume — see `ccdb_core::tenant`); the server contributes what the
//! embedded library cannot: a wire boundary (`ccdb_rpc`), per-session
//! transaction ownership with idle reaping (`session`), a global bound on
//! in-flight transactions (admission control — backpressure instead of
//! unbounded queueing), and a Prometheus scrape endpoint (`ccdb_metrics`).
//!
//! Threading is deliberately boring: one accept loop, one OS thread per
//! connection (sessions are long-lived and the engine's own locking is the
//! concurrency story), one reaper thread, one metrics thread.

pub mod session;

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration as StdDuration;

use ccdb_btree::SplitPolicy;
use ccdb_common::sync::Mutex;
use ccdb_common::{ClockRef, Duration, Error, Result, TxnId};
use ccdb_core::audit::stream::{StreamAuditor, StreamStats};
use ccdb_core::db::{ComplianceConfig, CompliantDb};
use ccdb_core::shard::{DistTxn, ShardedDb};
use ccdb_core::tenant::TenantRegistry;
use ccdb_metrics::{MetricsServer, Registry, Sample};
use ccdb_rpc::proto::{read_frame, write_frame, ErrorCode, Request, Response, PROTOCOL_VERSION};

pub use session::SessionTable;

/// Service configuration.
pub struct ServerConfig {
    /// Data directory (tenants under `dir/tenants`, WORM under `dir/worm`).
    pub dir: PathBuf,
    /// RPC listen address, e.g. `"127.0.0.1:4999"` (port 0 = ephemeral).
    pub addr: String,
    /// Metrics listen address; `None` disables the endpoint.
    pub metrics_addr: Option<String>,
    /// Compliance configuration applied to every tenant.
    pub compliance: ComplianceConfig,
    /// Global bound on in-flight transactions across all sessions; `Begin`
    /// past the bound gets the typed admission-rejected error.
    pub max_inflight_txns: u64,
    /// Sessions idle longer than this are reaped (their sockets shut down,
    /// their open transactions aborted).
    pub idle_timeout: StdDuration,
    /// How often the reaper scans.
    pub reap_interval: StdDuration,
    /// Streaming-audit daemon poll interval; `None` disables the daemon.
    /// When enabled, one thread tails every tenant's compliance log with a
    /// [`StreamAuditor`], bounding audit lag to roughly one interval.
    pub audit_stream_interval: Option<StdDuration>,
    /// Every Nth daemon poll per tenant is a *deep* poll (full fold against
    /// the disk state, catching in-place tampering); the rest are shallow
    /// log-tail polls that never touch the engine. `1` = every poll deep.
    pub audit_stream_deep_every: u32,
    /// Shard count. `1` (the default) hosts a multi-tenant registry of
    /// plain engines; `> 1` hosts one sharded deployment (N engines over
    /// the shared WORM, cross-shard 2PC) that every session binds to.
    pub shards: u32,
    /// Auto-seal: when the streaming auditor's record lag for a tenant or
    /// shard reaches this, the daemon runs a full sealing audit on it.
    pub auto_seal_lag: Option<u64>,
    /// Auto-seal: when this many milliseconds pass without a seal on a
    /// tenant or shard, the daemon runs a full sealing audit on it.
    pub auto_seal_ms: Option<u64>,
}

impl ServerConfig {
    /// Defaults: ephemeral loopback port, metrics off, 256 in-flight
    /// transactions, 5-minute idle timeout.
    pub fn new(dir: impl Into<PathBuf>, compliance: ComplianceConfig) -> ServerConfig {
        ServerConfig {
            dir: dir.into(),
            addr: "127.0.0.1:0".to_string(),
            metrics_addr: None,
            compliance,
            max_inflight_txns: 256,
            idle_timeout: StdDuration::from_secs(300),
            reap_interval: StdDuration::from_millis(500),
            audit_stream_interval: None,
            audit_stream_deep_every: 1,
            shards: 1,
            auto_seal_lag: None,
            auto_seal_ms: None,
        }
    }
}

/// What the server hosts: a multi-tenant registry of plain engines, or one
/// sharded deployment. (A registry *of* sharded deployments is deliberately
/// out of scope: shards and tenants are siblings in the WORM namespace
/// tree, and mixing the two axes in one process buys nothing the two
/// configurations don't.)
enum Deployment {
    Tenants(TenantRegistry),
    Sharded(Arc<ShardedDb>),
}

impl Deployment {
    /// Every hosted database with its metrics/daemon label: tenant names
    /// in tenant mode, `shard-<i>` in sharded mode.
    fn dbs(&self) -> Vec<(String, Arc<CompliantDb>)> {
        match self {
            Deployment::Tenants(reg) => {
                reg.names().into_iter().filter_map(|n| reg.tenant(&n).map(|db| (n, db))).collect()
            }
            Deployment::Sharded(sdb) => sdb
                .shards()
                .iter()
                .enumerate()
                .map(|(i, db)| (format!("shard-{i}"), db.clone()))
                .collect(),
        }
    }
}

/// Shared server state.
struct Inner {
    deployment: Deployment,
    sessions: SessionTable,
    /// Transactions begun and not yet resolved, across all sessions.
    inflight: AtomicU64,
    max_inflight: u64,
    /// `Begin` requests bounced by admission control.
    rejections: AtomicU64,
    /// Last-published streaming-audit counters, per tenant (written by the
    /// daemon thread, read by scrape collectors and [`Server::audit_stats`]).
    audit_stats: Mutex<HashMap<String, StreamStats>>,
    /// Sealing audits triggered by the daemon's auto-seal policy.
    auto_seals: AtomicU64,
    /// Auto-seal thresholds (see [`ServerConfig`]).
    auto_seal_lag: Option<u64>,
    auto_seal_ms: Option<u64>,
    stop: AtomicBool,
}

impl Inner {
    /// Takes an admission slot, or returns the typed rejection (boxed: the
    /// `Response` enum grew wide with `ReadProof` and the rejection is the
    /// cold path).
    fn admit(&self) -> std::result::Result<(), Box<Response>> {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.max_inflight {
                self.rejections.fetch_add(1, Ordering::Relaxed);
                return Err(Box::new(Response::Err {
                    code: ErrorCode::AdmissionRejected,
                    msg: format!("{} transactions in flight (bound {})", cur, self.max_inflight),
                }));
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A running server. Dropping it stops the accept loop, shuts every
/// session down, and joins all service threads.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    registry: Arc<Registry>,
    metrics: Option<MetricsServer>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    reaper_thread: Option<std::thread::JoinHandle<()>>,
    audit_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Opens the tenant registry under `config.dir` and starts serving.
    pub fn start(config: ServerConfig, clock: ClockRef) -> Result<Server> {
        let deployment = if config.shards > 1 {
            Deployment::Sharded(Arc::new(ShardedDb::open(
                &config.dir,
                clock,
                config.compliance.clone(),
                config.shards,
            )?))
        } else {
            Deployment::Tenants(TenantRegistry::open(
                &config.dir,
                clock,
                config.compliance.clone(),
            )?)
        };
        let inner = Arc::new(Inner {
            deployment,
            sessions: SessionTable::new(),
            inflight: AtomicU64::new(0),
            max_inflight: config.max_inflight_txns.max(1),
            rejections: AtomicU64::new(0),
            audit_stats: Mutex::new(HashMap::new()),
            auto_seals: AtomicU64::new(0),
            auto_seal_lag: config.auto_seal_lag,
            auto_seal_ms: config.auto_seal_ms,
            stop: AtomicBool::new(false),
        });

        let registry = Arc::new(Registry::new());
        register_metrics(&registry, &inner);
        let metrics = match &config.metrics_addr {
            Some(addr) => Some(MetricsServer::start(addr, registry.clone())?),
            None => None,
        };

        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::io(format!("server: bind {}", config.addr), e))?;
        let addr = listener.local_addr().map_err(|e| Error::io("server: local_addr", e))?;
        listener.set_nonblocking(true).map_err(|e| Error::io("server: nonblocking", e))?;

        let accept_inner = inner.clone();
        let accept_thread = std::thread::Builder::new()
            .name("ccdb-accept".into())
            .spawn(move || {
                while !accept_inner.stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let conn_inner = accept_inner.clone();
                            let _ = std::thread::Builder::new()
                                .name("ccdb-conn".into())
                                .spawn(move || serve_conn(conn_inner, stream));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(StdDuration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(StdDuration::from_millis(5)),
                    }
                }
            })
            .map_err(|e| Error::io("server: spawn accept", e))?;

        let reaper_inner = inner.clone();
        let (idle, interval) = (config.idle_timeout, config.reap_interval);
        let reaper_thread = std::thread::Builder::new()
            .name("ccdb-reaper".into())
            .spawn(move || {
                while !reaper_inner.stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    reaper_inner.sessions.reap_idle(idle);
                }
            })
            .map_err(|e| Error::io("server: spawn reaper", e))?;

        let audit_thread = match config.audit_stream_interval {
            Some(interval) => {
                let daemon_inner = inner.clone();
                let deep_every = config.audit_stream_deep_every.max(1) as u64;
                Some(
                    std::thread::Builder::new()
                        .name("ccdb-audit-stream".into())
                        .spawn(move || {
                            // One StreamAuditor per tenant, created lazily and
                            // re-attached after an error (e.g. a WORM I/O
                            // failure mid-poll leaves the fold poisoned).
                            let mut auditors: HashMap<String, StreamAuditor> = HashMap::new();
                            let mut last_seal: HashMap<String, std::time::Instant> = HashMap::new();
                            let mut round: u64 = 0;
                            while !daemon_inner.stop.load(Ordering::Relaxed) {
                                std::thread::sleep(interval);
                                round += 1;
                                audit_daemon_tick(
                                    &daemon_inner,
                                    &mut auditors,
                                    &mut last_seal,
                                    round.is_multiple_of(deep_every),
                                );
                            }
                        })
                        .map_err(|e| Error::io("server: spawn audit daemon", e))?,
                )
            }
            None => None,
        };

        Ok(Server {
            inner,
            addr,
            registry,
            metrics,
            accept_thread: Some(accept_thread),
            reaper_thread: Some(reaper_thread),
            audit_thread,
        })
    }

    /// The RPC listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics listen address, when enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(|m| m.addr())
    }

    /// The metrics registry (for in-process scraping in tests).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The tenant registry. Panics in sharded mode (`shards > 1`), which
    /// hosts a single [`ShardedDb`] instead — see [`Server::sharded`].
    pub fn tenants(&self) -> &TenantRegistry {
        match &self.inner.deployment {
            Deployment::Tenants(reg) => reg,
            Deployment::Sharded(_) => {
                panic!("sharded deployment has no tenant registry (see Server::sharded)")
            }
        }
    }

    /// The sharded deployment, when the server was started with
    /// `shards > 1`.
    pub fn sharded(&self) -> Option<&Arc<ShardedDb>> {
        match &self.inner.deployment {
            Deployment::Sharded(sdb) => Some(sdb),
            Deployment::Tenants(_) => None,
        }
    }

    /// Sealing audits triggered by the daemon's auto-seal policy.
    pub fn auto_seals(&self) -> u64 {
        self.inner.auto_seals.load(Ordering::Relaxed)
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.inner.sessions.len()
    }

    /// In-flight transaction count (admission view).
    pub fn inflight_txns(&self) -> u64 {
        self.inner.inflight.load(Ordering::Relaxed)
    }

    /// `Begin` requests bounced by admission control.
    pub fn admission_rejections(&self) -> u64 {
        self.inner.rejections.load(Ordering::Relaxed)
    }

    /// Sessions reaped for idleness.
    pub fn sessions_reaped(&self) -> u64 {
        self.inner.sessions.reaped.load(Ordering::Relaxed)
    }

    /// The streaming-audit daemon's last-published counters, per tenant.
    /// Empty when the daemon is disabled or has not completed a round yet.
    pub fn audit_stats(&self) -> HashMap<String, StreamStats> {
        self.inner.audit_stats.lock().clone()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.sessions.shutdown_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.reaper_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.audit_thread.take() {
            let _ = t.join();
        }
        // MetricsServer stops in its own Drop.
    }
}

/// Registers the service + per-tenant engine counters on `registry`.
/// Everything here reads lock-free counters (or per-tenant `EngineStats`,
/// itself built from atomics), so scrapes never contend with committers.
fn register_metrics(registry: &Arc<Registry>, inner: &Arc<Inner>) {
    let i = inner.clone();
    registry.collector_gauge("ccdb_active_sessions", "Live RPC sessions.", move || {
        vec![Sample::value(i.sessions.len() as f64)]
    });
    let i = inner.clone();
    registry.collector_gauge(
        "ccdb_inflight_txns",
        "Transactions begun and not yet resolved (admission view).",
        move || vec![Sample::value(i.inflight.load(Ordering::Relaxed) as f64)],
    );
    let i = inner.clone();
    registry.collector_counter(
        "ccdb_admission_rejections_total",
        "Begin requests bounced by admission control.",
        move || vec![Sample::value(i.rejections.load(Ordering::Relaxed) as f64)],
    );
    let i = inner.clone();
    registry.collector_counter(
        "ccdb_sessions_reaped_total",
        "Sessions reaped for idleness.",
        move || vec![Sample::value(i.sessions.reaped.load(Ordering::Relaxed) as f64)],
    );
    let i = inner.clone();
    registry.collector_counter(
        "ccdb_commits_total",
        "Transactions committed, per tenant.",
        move || per_tenant(&i, |db| db.engine().stats().commits as f64),
    );
    let i = inner.clone();
    registry.collector_counter(
        "ccdb_aborts_total",
        "Transactions aborted, per tenant.",
        move || per_tenant(&i, |db| db.engine().stats().aborts as f64),
    );
    let i = inner.clone();
    registry.collector_counter(
        "ccdb_group_commit_batches_total",
        "Group-commit batches flushed (one fsync each), per tenant.",
        move || per_tenant(&i, |db| db.engine().stats().group_commit_batches as f64),
    );
    let i = inner.clone();
    registry.collector_counter(
        "ccdb_fsyncs_saved_total",
        "Fsyncs avoided by group-commit batching, per tenant.",
        move || per_tenant(&i, |db| db.engine().stats().fsyncs_saved as f64),
    );
    let i = inner.clone();
    registry.collector_gauge(
        "ccdb_buffer_hit_rate",
        "Buffer-pool hit rate, per tenant.",
        move || per_tenant(&i, |db| db.engine().stats().buffer_hit_rate),
    );
    let i = inner.clone();
    registry.collector_gauge("ccdb_wal_bytes", "WAL length in bytes, per tenant.", move || {
        per_tenant(&i, |db| db.engine().stats().wal_bytes as f64)
    });
    let i = inner.clone();
    registry.collector_gauge(
        "ccdb_stamp_queue_len",
        "Lazy-timestamping queue depth, per tenant.",
        move || per_tenant(&i, |db| db.engine().stats().stamp_queue_len as f64),
    );
    let i = inner.clone();
    registry.collector_gauge(
        "ccdb_audit_epoch",
        "Completed audit epochs, per tenant.",
        move || per_tenant(&i, |db| db.epoch() as f64),
    );
    let i = inner.clone();
    registry.collector_gauge(
        "ccdb_audit_lag_records",
        "Compliance-log records appended but not yet ingested by the streaming auditor, per tenant.",
        move || per_audit(&i, |s| s.lag_records as f64),
    );
    let i = inner.clone();
    registry.collector_gauge(
        "ccdb_audit_lag_us",
        "Wall-clock µs the streaming auditor's last poll spent draining the log tail, per tenant.",
        move || per_audit(&i, |s| s.last_poll_us as f64),
    );
    let i = inner.clone();
    registry.collector_counter(
        "ccdb_epochs_sealed_total",
        "Epoch rolls observed by the streaming auditor (clean audits under the stream), per tenant.",
        move || per_audit(&i, |s| s.epochs_sealed as f64),
    );
    let i = inner.clone();
    registry.collector_counter(
        "ccdb_tamper_alerts_total",
        "Tamper alerts raised by the streaming auditor, per tenant.",
        move || per_audit(&i, |s| s.tamper_alerts as f64),
    );
    let i = inner.clone();
    registry.collector_counter(
        "ccdb_auto_seals_total",
        "Sealing audits triggered by the daemon's auto-seal policy.",
        move || vec![Sample::value(i.auto_seals.load(Ordering::Relaxed) as f64)],
    );
    let i = inner.clone();
    registry.collector_counter(
        "ccdb_l_records_total",
        "Compliance-log records appended this epoch, per tenant (audit lag proxy).",
        move || {
            per_tenant(&i, |db| {
                db.plugin().map(|p| p.logger().records_appended() as f64).unwrap_or(0.0)
            })
        },
    );
}

/// One daemon round: poll every tenant's (or shard's) streaming auditor,
/// publish the counters, and apply the auto-seal policy. Databases appear
/// lazily (first round after creation) and an auditor that errors is
/// dropped so the next round re-attaches fresh — re-seeding from the sealed
/// snapshot is always safe, only the incremental fold state is lost.
fn audit_daemon_tick(
    inner: &Inner,
    auditors: &mut HashMap<String, StreamAuditor>,
    last_seal: &mut HashMap<String, std::time::Instant>,
    deep: bool,
) {
    for (name, db) in inner.deployment.dbs() {
        if !auditors.contains_key(&name) {
            match db.stream_auditor() {
                Ok(aud) => {
                    auditors.insert(name.clone(), aud);
                }
                Err(_) => continue, // e.g. no compliance mode configured
            }
        }
        let aud = auditors.get_mut(&name).expect("inserted above");
        let outcome = if deep { aud.poll_deep(&db) } else { aud.poll(&db) };
        let stats = aud.stats();
        match outcome {
            Ok(_alert) => {
                // Alerts are not consumed here: the counters below carry
                // tamper_alerts / violations to the scrape endpoint, and
                // the evidence stays queryable through a real audit.
                inner.audit_stats.lock().insert(name.clone(), stats);
            }
            Err(_) => {
                inner.audit_stats.lock().insert(name.clone(), stats);
                auditors.remove(&name);
                continue;
            }
        }

        // Auto-seal policy: a full sealing audit when the stream's record
        // lag trips the bound, or when too much wall-clock has passed since
        // the last seal — whichever fires first. A failed attempt (e.g.
        // quiesce refused because transactions are open) just retries next
        // round; the epoch roll is observed by the stream auditor like any
        // operator-initiated audit.
        let since = last_seal.entry(name.clone()).or_insert_with(std::time::Instant::now);
        let lag_trip = inner.auto_seal_lag.is_some_and(|bound| stats.lag_records >= bound);
        let time_trip = inner
            .auto_seal_ms
            .is_some_and(|bound| since.elapsed() >= StdDuration::from_millis(bound));
        if (lag_trip || time_trip) && db.audit().is_ok() {
            inner.auto_seals.fetch_add(1, Ordering::Relaxed);
            *since = std::time::Instant::now();
        }
    }
}

fn per_tenant(inner: &Inner, f: impl Fn(&CompliantDb) -> f64) -> Vec<Sample> {
    let label = match &inner.deployment {
        Deployment::Tenants(_) => "tenant",
        Deployment::Sharded(_) => "shard",
    };
    inner
        .deployment
        .dbs()
        .into_iter()
        .map(|(name, db)| Sample::labelled(label, &name, f(&db)))
        .collect()
}

fn per_audit(inner: &Inner, f: impl Fn(&StreamStats) -> f64) -> Vec<Sample> {
    let label = match &inner.deployment {
        Deployment::Tenants(_) => "tenant",
        Deployment::Sharded(_) => "shard",
    };
    inner
        .audit_stats
        .lock()
        .iter()
        .map(|(name, stats)| Sample::labelled(label, name, f(stats)))
        .collect()
}

/// What a session's requests execute against. In sharded mode the session
/// owns its open distributed transactions: the wire handle is the global
/// transaction id, resolved here to the [`DistTxn`] the coordinator needs.
enum SessionDb {
    Plain(Arc<CompliantDb>),
    Sharded { db: Arc<ShardedDb>, open: HashMap<TxnId, DistTxn> },
}

/// Per-connection state once `Hello` has bound a tenant (or, in sharded
/// mode, the deployment).
struct Session {
    id: u64,
    db: SessionDb,
}

/// The connection loop: `Hello` handshake, then request/response until
/// disconnect (clean, error, or reaper-initiated). All cleanup — aborting
/// the session's open transactions, releasing admission slots,
/// deregistering — happens here, in exactly one place.
fn serve_conn(inner: Arc<Inner>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut session: Option<Session> = None;
    // The read stops on clean EOF or a dead socket (peer gone / reaper
    // shutdown) — either way the cleanup below runs.
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        let req = match Request::decode(&frame) {
            Ok(r) => r,
            Err(e) => {
                // Undecodable frame: answer if possible, then drop the
                // connection (framing state is unknown).
                let resp =
                    Response::Err { code: ErrorCode::Invalid, msg: format!("bad request: {e}") };
                let _ = write_frame(&mut stream, &resp.encode());
                break;
            }
        };
        let resp = dispatch(&inner, &mut session, &stream, req);
        if let Some(s) = &session {
            inner.sessions.touch(s.id);
        }
        if write_frame(&mut stream, &resp.encode()).is_err() {
            break;
        }
    }
    // The single cleanup path.
    if let Some(mut s) = session {
        if let Some((_tenant, txns)) = inner.sessions.deregister(s.id) {
            for txn in txns {
                match &mut s.db {
                    SessionDb::Plain(db) => {
                        let _ = db.abort(txn);
                    }
                    SessionDb::Sharded { db, open } => {
                        if let Some(dtx) = open.remove(&txn) {
                            let _ = db.abort(dtx);
                        }
                    }
                }
                inner.release();
            }
        }
    }
}

fn err_of(e: Error) -> Response {
    Response::Err { code: ErrorCode::from_error(&e), msg: e.to_string() }
}

/// A sharded-session request named a transaction handle with no open
/// distributed transaction behind it (e.g. already resolved).
fn stale_handle(txn: TxnId) -> Response {
    Response::Err {
        code: ErrorCode::InvalidTransaction,
        msg: format!("{txn:?} has no open distributed transaction"),
    }
}

/// Maps a `read_proof` result onto the wire (shared by the plain path and
/// the shard-routed path).
fn proof_resp(result: Result<(ccdb_core::SignedHead, Option<ccdb_core::ProvenRead>)>) -> Response {
    match result {
        Ok((head, proven)) => {
            let (value, proof) = match proven {
                Some(p) => (p.value, Some(p.proof_bytes)),
                None => (None, None),
            };
            Response::ReadProof {
                epoch: head.head.epoch,
                value,
                head: head.head_bytes,
                sig: head.sig_bytes,
                pubkey: head.pub_bytes,
                proof,
            }
        }
        // NotFound covers "no sealed epoch yet" — the client must run
        // (or wait for) one clean audit before proof-carrying reads.
        Err(e) => err_of(e),
    }
}

fn dispatch(
    inner: &Arc<Inner>,
    session: &mut Option<Session>,
    stream: &TcpStream,
    req: Request,
) -> Response {
    // Hello is the only request valid without a session.
    if let Request::Hello { version, tenant } = &req {
        if *version != PROTOCOL_VERSION {
            return Response::Err {
                code: ErrorCode::Invalid,
                msg: format!(
                    "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
                ),
            };
        }
        if session.is_some() {
            return Response::Err {
                code: ErrorCode::Invalid,
                msg: "session already bound".to_string(),
            };
        }
        let db = match &inner.deployment {
            Deployment::Tenants(reg) => match reg.create_or_open(tenant) {
                Ok(db) => SessionDb::Plain(db),
                Err(e) => return err_of(e),
            },
            // One deployment, many sessions: the tenant name selects
            // nothing in sharded mode.
            Deployment::Sharded(sdb) => {
                SessionDb::Sharded { db: sdb.clone(), open: HashMap::new() }
            }
        };
        let reaper_handle = match stream.try_clone() {
            Ok(s) => s,
            Err(e) => return err_of(Error::io("server: clone session socket", e)),
        };
        let id = inner.sessions.register(tenant, reaper_handle);
        *session = Some(Session { id, db });
        return Response::Ok;
    }
    let Some(s) = session.as_mut() else {
        return Response::Err {
            code: ErrorCode::NoSession,
            msg: "Hello required before any other request".to_string(),
        };
    };
    let sid = s.id;

    // Transaction-handle requests must use a handle this session owns:
    // sessions cannot observe or resolve each other's transactions.
    let owns = |txn: TxnId| -> Option<Response> {
        if inner.sessions.owns_txn(sid, txn) {
            None
        } else {
            Some(Response::Err {
                code: ErrorCode::InvalidTransaction,
                msg: format!("{txn:?} is not owned by this session"),
            })
        }
    };

    match req {
        Request::Hello { .. } => unreachable!("handled above"),
        Request::Ping => Response::Ok,
        Request::Begin => {
            if let Err(rejection) = inner.admit() {
                return *rejection;
            }
            match &mut s.db {
                SessionDb::Plain(db) => match db.begin() {
                    Ok(txn) => {
                        inner.sessions.track_txn(sid, txn);
                        Response::TxnBegun { txn }
                    }
                    Err(e) => {
                        inner.release();
                        err_of(e)
                    }
                },
                SessionDb::Sharded { db, open } => {
                    // The wire handle for a distributed transaction is its
                    // global id; shard-local transactions begin lazily as
                    // the session's keys route to shards.
                    let dtx = db.begin();
                    let txn = TxnId(dtx.gtxn());
                    open.insert(txn, dtx);
                    inner.sessions.track_txn(sid, txn);
                    Response::TxnBegun { txn }
                }
            }
        }
        Request::Write { txn, rel, key, value } => owns(txn).unwrap_or_else(|| match &mut s.db {
            SessionDb::Plain(db) => match db.write(txn, rel, &key, &value) {
                Ok(()) => Response::Ok,
                Err(e) => err_of(e),
            },
            SessionDb::Sharded { db, open } => match open.get_mut(&txn) {
                None => stale_handle(txn),
                Some(dtx) => match db.write(dtx, rel, &key, &value) {
                    Ok(()) => Response::Ok,
                    Err(e) => err_of(e),
                },
            },
        }),
        Request::Delete { txn, rel, key } => owns(txn).unwrap_or_else(|| match &mut s.db {
            SessionDb::Plain(db) => match db.delete(txn, rel, &key) {
                Ok(()) => Response::Ok,
                Err(e) => err_of(e),
            },
            SessionDb::Sharded { db, open } => match open.get_mut(&txn) {
                None => stale_handle(txn),
                Some(dtx) => match db.delete(dtx, rel, &key) {
                    Ok(()) => Response::Ok,
                    Err(e) => err_of(e),
                },
            },
        }),
        Request::Read { txn, rel, key } => owns(txn).unwrap_or_else(|| match &mut s.db {
            SessionDb::Plain(db) => match db.read(txn, rel, &key) {
                Ok(value) => Response::Value { value },
                Err(e) => err_of(e),
            },
            SessionDb::Sharded { db, open } => match open.get_mut(&txn) {
                None => stale_handle(txn),
                Some(dtx) => match db.read(dtx, rel, &key) {
                    Ok(value) => Response::Value { value },
                    Err(e) => err_of(e),
                },
            },
        }),
        Request::Commit { txn } => owns(txn).unwrap_or_else(|| {
            // Commit consumes the handle even on failure (the engine
            // removes the transaction state on entry), so the admission
            // slot and ownership entry are released unconditionally.
            let result = match &mut s.db {
                SessionDb::Plain(db) => db.commit(txn),
                SessionDb::Sharded { db, open } => match open.remove(&txn) {
                    None => {
                        Err(Error::Invalid(format!("{txn:?} has no open distributed transaction")))
                    }
                    Some(dtx) => db.commit(dtx),
                },
            };
            inner.sessions.untrack_txn(sid, txn);
            inner.release();
            match result {
                Ok(commit_time) => Response::Committed { commit_time },
                Err(e) => err_of(e),
            }
        }),
        Request::Abort { txn } => owns(txn).unwrap_or_else(|| {
            let result = match &mut s.db {
                SessionDb::Plain(db) => db.abort(txn),
                SessionDb::Sharded { db, open } => match open.remove(&txn) {
                    None => {
                        Err(Error::Invalid(format!("{txn:?} has no open distributed transaction")))
                    }
                    Some(dtx) => db.abort(dtx),
                },
            };
            inner.sessions.untrack_txn(sid, txn);
            inner.release();
            match result {
                Ok(()) => Response::Ok,
                Err(e) => err_of(e),
            }
        }),
        Request::CreateRelation { name, time_split_threshold } => {
            let policy = if time_split_threshold.is_nan() {
                SplitPolicy::KeyOnly
            } else {
                SplitPolicy::TimeSplit { threshold: time_split_threshold }
            };
            match &s.db {
                SessionDb::Plain(db) => match db.engine().rel_id(&name) {
                    Some(rel) => Response::Rel { rel },
                    None => match db.create_relation(&name, policy) {
                        Ok(rel) => Response::Rel { rel },
                        Err(e) => err_of(e),
                    },
                },
                SessionDb::Sharded { db, .. } => match db.rel_id(&name) {
                    Some(rel) => Response::Rel { rel },
                    None => match db.create_relation(&name, policy) {
                        Ok(rel) => Response::Rel { rel },
                        Err(e) => err_of(e),
                    },
                },
            }
        }
        Request::RelId { name } => {
            let rel = match &s.db {
                SessionDb::Plain(db) => db.engine().rel_id(&name),
                SessionDb::Sharded { db, .. } => db.rel_id(&name),
            };
            match rel {
                Some(rel) => Response::Rel { rel },
                None => {
                    Response::Err { code: ErrorCode::NotFound, msg: format!("relation {name:?}") }
                }
            }
        }
        Request::SetRetention { txn, name, period_us } => {
            owns(txn).unwrap_or_else(|| match &s.db {
                SessionDb::Plain(db) => match db.set_retention(txn, &name, Duration(period_us)) {
                    Ok(()) => Response::Ok,
                    Err(e) => err_of(e),
                },
                // Retention is a catalog property of every shard; the
                // broadcast uses shard-local transactions, the session's
                // handle only gates the request.
                SessionDb::Sharded { db, .. } => {
                    match db.set_retention(&name, Duration(period_us)) {
                        Ok(()) => Response::Ok,
                        Err(e) => err_of(e),
                    }
                }
            })
        }
        Request::Audit { serial } => match &s.db {
            SessionDb::Plain(db) => {
                if serial {
                    // Dry-run with the serial single-pass oracle: verdict
                    // only, no epoch advance (differential checks against
                    // the real audit below).
                    let mut cfg = db.audit_config();
                    cfg.serial = true;
                    match db.audit_outcome_with(cfg) {
                        Ok(out) => Response::AuditDone {
                            clean: out.report.is_clean(),
                            violations: out.report.violations.len() as u32,
                            tuples_final: out.report.stats.tuples_final,
                            records_scanned: out.report.stats.records_scanned,
                        },
                        Err(e) => err_of(e),
                    }
                } else {
                    match db.audit() {
                        Ok(report) => Response::AuditDone {
                            clean: report.is_clean(),
                            violations: report.violations.len() as u32,
                            tuples_final: report.stats.tuples_final,
                            records_scanned: report.stats.records_scanned,
                        },
                        Err(e) => err_of(e),
                    }
                }
            }
            SessionDb::Sharded { db, .. } => {
                if serial {
                    let mut cfg = db.shards()[0].audit_config();
                    cfg.serial = true;
                    match db.audit_dry(cfg) {
                        Ok((outcomes, cross)) => Response::AuditDone {
                            clean: cross.is_empty() && outcomes.iter().all(|o| o.report.is_clean()),
                            violations: (outcomes
                                .iter()
                                .map(|o| o.report.violations.len())
                                .sum::<usize>()
                                + cross.len()) as u32,
                            tuples_final: outcomes
                                .iter()
                                .map(|o| o.report.stats.tuples_final)
                                .sum(),
                            records_scanned: outcomes
                                .iter()
                                .map(|o| o.report.stats.records_scanned)
                                .sum(),
                        },
                        Err(e) => err_of(e),
                    }
                } else {
                    match db.audit() {
                        Ok(dep) => Response::AuditDone {
                            clean: dep.is_clean(),
                            violations: (dep
                                .shard_reports
                                .iter()
                                .map(|r| r.violations.len())
                                .sum::<usize>()
                                + dep.cross_shard.len())
                                as u32,
                            tuples_final: dep
                                .shard_reports
                                .iter()
                                .map(|r| r.stats.tuples_final)
                                .sum(),
                            records_scanned: dep
                                .shard_reports
                                .iter()
                                .map(|r| r.stats.records_scanned)
                                .sum(),
                        },
                        Err(e) => err_of(e),
                    }
                }
            }
        },
        Request::Migrate { rel } => match &s.db {
            SessionDb::Plain(db) => match db.migrate_to_worm(rel) {
                Ok(report) => Response::Migrated { tuples: report.tuples_migrated as u64 },
                Err(e) => err_of(e),
            },
            SessionDb::Sharded { db, .. } => {
                let mut tuples = 0u64;
                let mut failed = None;
                for shard in db.shards() {
                    match shard.migrate_to_worm(rel) {
                        Ok(report) => tuples += report.tuples_migrated as u64,
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                match failed {
                    None => Response::Migrated { tuples },
                    Some(e) => err_of(e),
                }
            }
        },
        Request::ReadVerified { rel, key } => match &s.db {
            SessionDb::Plain(db) => proof_resp(db.read_proof(rel, &key)),
            // Proof-carrying reads route to the shard owning the key; the
            // proof verifies against that shard's signed epoch head.
            SessionDb::Sharded { db, .. } => {
                let shard = &db.shards()[db.map().shard_of(&key)];
                proof_resp(shard.read_proof(rel, &key))
            }
        },
        Request::Stats => match &s.db {
            SessionDb::Plain(db) => {
                let stats = db.engine().stats();
                Response::Stats {
                    commits: stats.commits,
                    aborts: stats.aborts,
                    active_txns: stats.active_txns,
                    group_commit_batches: stats.group_commit_batches,
                    wal_bytes: stats.wal_bytes,
                    epoch: db.epoch(),
                }
            }
            SessionDb::Sharded { db, .. } => {
                // Deployment view: sums across shards, and the *lowest*
                // shard epoch (the deployment has sealed through epoch E
                // only once every shard has).
                let mut commits = 0;
                let mut aborts = 0;
                let mut active_txns = 0;
                let mut group_commit_batches = 0;
                let mut wal_bytes = 0;
                let mut epoch = u64::MAX;
                for shard in db.shards() {
                    let stats = shard.engine().stats();
                    commits += stats.commits;
                    aborts += stats.aborts;
                    active_txns += stats.active_txns;
                    group_commit_batches += stats.group_commit_batches;
                    wal_bytes += stats.wal_bytes;
                    epoch = epoch.min(shard.epoch());
                }
                Response::Stats {
                    commits,
                    aborts,
                    active_txns,
                    group_commit_batches,
                    wal_bytes,
                    epoch,
                }
            }
        },
    }
}
