//! `ccdb-server`: the multi-tenant compliant-DB service binary.
//!
//! ```text
//! ccdb-server --dir /var/lib/ccdb --addr 127.0.0.1:4999 \
//!             --metrics-addr 127.0.0.1:9187
//! ```

use std::sync::Arc;

use ccdb_common::time::SystemClock;
use ccdb_core::db::{ComplianceConfig, Mode};
use ccdb_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: ccdb-server --dir <path> [--addr <host:port>] \
         [--metrics-addr <host:port>] [--max-inflight <n>] [--idle-timeout-secs <n>] \
         [--audit-stream-ms <n>] [--audit-deep-every <n>] [--shards <n>] \
         [--auto-seal-lag <records>] [--auto-seal-ms <n>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<String> = None;
    let mut addr = "127.0.0.1:4999".to_string();
    let mut metrics_addr: Option<String> = None;
    let mut max_inflight: u64 = 256;
    let mut idle_timeout_secs: u64 = 300;
    let mut audit_stream_ms: Option<u64> = None;
    let mut audit_deep_every: u32 = 1;
    let mut shards: u32 = 1;
    let mut auto_seal_lag: Option<u64> = None;
    let mut auto_seal_ms: Option<u64> = None;
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_missing(flag));
        match flag.as_str() {
            "--dir" => dir = Some(value("--dir")),
            "--addr" => addr = value("--addr"),
            "--metrics-addr" => metrics_addr = Some(value("--metrics-addr")),
            "--max-inflight" => {
                max_inflight = value("--max-inflight").parse().unwrap_or_else(|_| usage())
            }
            "--idle-timeout-secs" => {
                idle_timeout_secs = value("--idle-timeout-secs").parse().unwrap_or_else(|_| usage())
            }
            "--audit-stream-ms" => {
                audit_stream_ms =
                    Some(value("--audit-stream-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--audit-deep-every" => {
                audit_deep_every = value("--audit-deep-every").parse().unwrap_or_else(|_| usage())
            }
            "--shards" => shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--auto-seal-lag" => {
                auto_seal_lag = Some(value("--auto-seal-lag").parse().unwrap_or_else(|_| usage()))
            }
            "--auto-seal-ms" => {
                auto_seal_ms = Some(value("--auto-seal-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };

    let compliance = ComplianceConfig { mode: Mode::LogConsistent, ..ComplianceConfig::default() };
    let mut config = ServerConfig::new(dir, compliance);
    config.addr = addr;
    config.metrics_addr = metrics_addr;
    config.max_inflight_txns = max_inflight;
    config.idle_timeout = std::time::Duration::from_secs(idle_timeout_secs);
    config.audit_stream_interval = audit_stream_ms.map(std::time::Duration::from_millis);
    config.audit_stream_deep_every = audit_deep_every;
    config.shards = shards.max(1);
    config.auto_seal_lag = auto_seal_lag;
    config.auto_seal_ms = auto_seal_ms;

    let server = match Server::start(config, Arc::new(SystemClock::new())) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ccdb-server: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("ccdb-server listening on {}", server.addr());
    if let Some(m) = server.metrics_addr() {
        eprintln!("ccdb-server metrics on http://{m}/metrics");
    }
    // Serve until killed; the accept/reaper threads do the work.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn usage_missing(flag: &str) -> String {
    eprintln!("ccdb-server: missing value for {flag}");
    usage()
}
