//! Property tests for the cryptographic invariants the architecture
//! depends on.
//!
//! Gated behind the non-default `proptest` cargo feature and driven by the
//! workspace's own seeded [`SplitMix64`] (no external registry access), with
//! the classic property-test shape: N random cases per property, and every
//! assertion failure names the case seed so it replays deterministically.

#![cfg(feature = "proptest")]

use ccdb_common::SplitMix64;
use ccdb_crypto::{sha256, AddHash, HsChain, Sha256};

const CASES: u64 = 256;

fn bytes(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..=max_len);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn byte_vecs(rng: &mut SplitMix64, max_items: usize, max_len: usize) -> Vec<Vec<u8>> {
    let n = rng.gen_range(0..=max_items);
    (0..n).map(|_| bytes(rng, max_len)).collect()
}

/// Incremental SHA-256 equals one-shot for any chunking.
#[test]
fn sha256_incremental_matches_oneshot() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0x5A_0000 + case);
        let data = bytes(&mut rng, 2048);
        let expected = sha256(&data);
        let mut bounds: Vec<usize> =
            (0..rng.gen_range(0..8usize)).map(|_| rng.gen_range(0..=data.len())).collect();
        bounds.push(0);
        bounds.push(data.len());
        bounds.sort_unstable();
        let mut h = Sha256::new();
        for w in bounds.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        assert_eq!(h.finalize(), expected, "case seed {case}");
    }
}

/// ADD-HASH is permutation-invariant (commutativity: the property that
/// lets the auditor skip sorting L).
#[test]
fn addhash_is_permutation_invariant() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0xADD_0000 + case);
        let items = byte_vecs(&mut rng, 40, 64);
        let forward = AddHash::of(items.iter().map(|v| v.as_slice()));
        let mut shuffled = items.clone();
        rng.shuffle(&mut shuffled);
        let backward = AddHash::of(shuffled.iter().map(|v| v.as_slice()));
        assert_eq!(forward, backward, "case seed {case}");
    }
}

/// remove() is the exact inverse of add() in any interleaving.
#[test]
fn addhash_remove_inverts_add() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0x1F_0000 + case);
        let base = byte_vecs(&mut rng, 20, 32);
        let extra = byte_vecs(&mut rng, 20, 32);
        let mut acc = AddHash::of(base.iter().map(|v| v.as_slice()));
        let snapshot = acc;
        for e in &extra {
            acc.add(e);
        }
        for e in extra.iter().rev() {
            acc.remove(e);
        }
        assert_eq!(acc, snapshot, "case seed {case}");
    }
}

/// Multiset sensitivity: two multisets with different element counts
/// hash differently (probabilistically; collisions would falsify).
#[test]
fn addhash_counts_multiplicity() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0x2C_0000 + case);
        let mut item = bytes(&mut rng, 31);
        item.push(rng.gen_range(0..=255u8));
        let n = rng.gen_range(1..5usize);
        let mut a = AddHash::new();
        let mut b = AddHash::new();
        for _ in 0..n {
            a.add(&item);
        }
        for _ in 0..n + 1 {
            b.add(&item);
        }
        assert_ne!(a, b, "case seed {case}");
    }
}

/// Hs chains extend incrementally and are order sensitive.
#[test]
fn hs_chain_incremental_and_ordered() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0x45_0000 + case);
        let n = rng.gen_range(2..20usize);
        let items: Vec<Vec<u8>> = (0..n).map(|_| bytes(&mut rng, 32)).collect();
        let batch = HsChain::of(items.iter().map(|v| v.as_slice()));
        let mut inc = HsChain::new();
        for i in &items {
            inc.extend(i);
        }
        assert_eq!(batch, inc, "case seed {case}");
        // Swapping two distinct adjacent elements changes the chain.
        let mut swapped = items.clone();
        if swapped[0] != swapped[1] {
            swapped.swap(0, 1);
            let other = HsChain::of(swapped.iter().map(|v| v.as_slice()));
            assert_ne!(batch, other, "case seed {case}");
        }
    }
}

/// The completeness-check equivalence the audit rests on: for random
/// multisets, ADD-HASH equality coincides with multiset equality.
#[test]
fn addhash_equality_matches_multiset_equality() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0x3E_0000 + case);
        let a = byte_vecs(&mut rng, 30, 16);
        let b = if rng.gen_bool(0.3) { a.clone() } else { byte_vecs(&mut rng, 30, 16) };
        let ha = AddHash::of(a.iter().map(|v| v.as_slice()));
        let hb = AddHash::of(b.iter().map(|v| v.as_slice()));
        let mut sa = a.clone();
        let mut sb = b.clone();
        sa.sort();
        sb.sort();
        assert_eq!(ha == hb, sa == sb, "case seed {case}");
    }
}
