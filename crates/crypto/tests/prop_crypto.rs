//! Property tests for the cryptographic invariants the architecture
//! depends on.

use ccdb_crypto::{sha256, AddHash, HsChain, Sha256};
use proptest::prelude::*;

proptest! {
    /// Incremental SHA-256 equals one-shot for any chunking.
    #[test]
    fn sha256_incremental_matches_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        cuts in proptest::collection::vec(0usize..2048, 0..8),
    ) {
        let expected = sha256(&data);
        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        bounds.push(0);
        bounds.push(data.len());
        bounds.sort_unstable();
        let mut h = Sha256::new();
        for w in bounds.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), expected);
    }

    /// ADD-HASH is permutation-invariant (commutativity: the property that
    /// lets the auditor skip sorting L).
    #[test]
    fn addhash_is_permutation_invariant(
        items in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..40),
        seed in any::<u64>(),
    ) {
        let forward = AddHash::of(items.iter().map(|v| v.as_slice()));
        let mut shuffled = items.clone();
        // Deterministic Fisher–Yates from the seed.
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let backward = AddHash::of(shuffled.iter().map(|v| v.as_slice()));
        prop_assert_eq!(forward, backward);
    }

    /// remove() is the exact inverse of add() in any interleaving.
    #[test]
    fn addhash_remove_inverts_add(
        base in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..20),
        extra in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..20),
    ) {
        let mut acc = AddHash::of(base.iter().map(|v| v.as_slice()));
        let snapshot = acc;
        for e in &extra {
            acc.add(e);
        }
        for e in extra.iter().rev() {
            acc.remove(e);
        }
        prop_assert_eq!(acc, snapshot);
    }

    /// Multiset sensitivity: two multisets with different element counts
    /// hash differently (probabilistically; collisions would falsify).
    #[test]
    fn addhash_counts_multiplicity(
        item in proptest::collection::vec(any::<u8>(), 1..32),
        n in 1usize..5,
    ) {
        let mut a = AddHash::new();
        let mut b = AddHash::new();
        for _ in 0..n {
            a.add(&item);
        }
        for _ in 0..n + 1 {
            b.add(&item);
        }
        prop_assert_ne!(a, b);
    }

    /// Hs chains extend incrementally and are order sensitive.
    #[test]
    fn hs_chain_incremental_and_ordered(
        items in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 2..20),
    ) {
        let batch = HsChain::of(items.iter().map(|v| v.as_slice()));
        let mut inc = HsChain::new();
        for i in &items {
            inc.extend(i);
        }
        prop_assert_eq!(batch, inc);
        // Swapping two distinct adjacent elements changes the chain.
        let mut swapped = items.clone();
        if swapped[0] != swapped[1] {
            swapped.swap(0, 1);
            let other = HsChain::of(swapped.iter().map(|v| v.as_slice()));
            prop_assert_ne!(batch, other);
        }
    }

    /// The completeness-check equivalence the audit rests on: for random
    /// multisets, ADD-HASH equality coincides with multiset equality.
    #[test]
    fn addhash_equality_matches_multiset_equality(
        a in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..30),
        b in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..30),
    ) {
        let ha = AddHash::of(a.iter().map(|v| v.as_slice()));
        let hb = AddHash::of(b.iter().map(|v| v.as_slice()));
        let mut sa = a.clone();
        let mut sb = b.clone();
        sa.sort();
        sb.sort();
        prop_assert_eq!(ha == hb, sa == sb);
    }
}
