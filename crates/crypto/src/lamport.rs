//! Lamport one-time signatures over SHA-256.
//!
//! The architecture needs exactly one signing event per audit: "the auditor
//! places a complete snapshot of the current database state on WORM …
//! together with the auditor's digital signature testifying that the snapshot
//! is correct" (Section IV). A Lamport OTS is a genuine digital signature
//! whose security reduces entirely to the one-wayness of the hash — fitting
//! for a from-scratch build — and its one-time restriction matches the
//! one-signature-per-audit usage (the auditor derives a fresh keypair per
//! audit from a master seed; verifiers pin the per-audit public key, which is
//! itself stored on WORM at audit time and therefore term-immutable).
//!
//! Key generation is deterministic from a 32-byte seed so no RNG dependency
//! is needed: `sk[i][b] = SHA256(seed ‖ "ccdb:lamport" ‖ i ‖ b)`.

use crate::sha256::{sha256, Digest, Sha256};

const BITS: usize = 256;

/// A Lamport public key: for each message-digest bit, the hashes of the two
/// secret preimages.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportPublicKey {
    pairs: Box<[[Digest; 2]]>,
}

impl core::fmt::Debug for LamportPublicKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "LamportPublicKey({}…)", crate::to_hex(&self.fingerprint()[..8]))
    }
}

/// A Lamport signing key (one-time use).
pub struct LamportKeyPair {
    secret: Box<[[Digest; 2]]>,
    public: LamportPublicKey,
    used: core::cell::Cell<bool>,
}

/// A Lamport signature: one revealed preimage per digest bit.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportSignature {
    reveals: Box<[Digest]>,
}

impl LamportKeyPair {
    /// Deterministically derives a keypair from a seed. Distinct seeds (e.g.
    /// `master ‖ audit_number`) give independent keypairs.
    pub fn from_seed(seed: &[u8; 32]) -> LamportKeyPair {
        let mut secret = Vec::with_capacity(BITS);
        let mut public = Vec::with_capacity(BITS);
        for i in 0..BITS {
            let mut pair_sk = [[0u8; 32]; 2];
            let mut pair_pk = [[0u8; 32]; 2];
            for b in 0..2usize {
                let mut h = Sha256::new();
                h.update(seed)
                    .update(b"ccdb:lamport")
                    .update(&(i as u32).to_le_bytes())
                    .update(&[b as u8]);
                pair_sk[b] = h.finalize();
                pair_pk[b] = sha256(&pair_sk[b]);
            }
            secret.push(pair_sk);
            public.push(pair_pk);
        }
        LamportKeyPair {
            secret: secret.into_boxed_slice(),
            public: LamportPublicKey { pairs: public.into_boxed_slice() },
            used: core::cell::Cell::new(false),
        }
    }

    /// The public half.
    pub fn public_key(&self) -> &LamportPublicKey {
        &self.public
    }

    /// Signs a message. Panics if the key has already signed once — a Lamport
    /// key must never sign twice (doing so can leak both preimages of a bit
    /// position and permit forgery).
    pub fn sign(&self, message: &[u8]) -> LamportSignature {
        assert!(!self.used.replace(true), "Lamport one-time key reused for a second signature");
        let digest = sha256(message);
        let mut reveals = Vec::with_capacity(BITS);
        for i in 0..BITS {
            let bit = (digest[i / 8] >> (7 - (i % 8))) & 1;
            reveals.push(self.secret[i][bit as usize]);
        }
        LamportSignature { reveals: reveals.into_boxed_slice() }
    }
}

impl LamportPublicKey {
    /// Verifies a signature over `message`.
    pub fn verify(&self, message: &[u8], sig: &LamportSignature) -> bool {
        if sig.reveals.len() != BITS || self.pairs.len() != BITS {
            return false;
        }
        let digest = sha256(message);
        for i in 0..BITS {
            let bit = (digest[i / 8] >> (7 - (i % 8))) & 1;
            if sha256(&sig.reveals[i]) != self.pairs[i][bit as usize] {
                return false;
            }
        }
        true
    }

    /// Serializes the public key (2 × 256 digests = 16 KiB).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BITS * 64);
        for p in self.pairs.iter() {
            out.extend_from_slice(&p[0]);
            out.extend_from_slice(&p[1]);
        }
        out
    }

    /// Deserializes a public key; `None` on wrong length.
    pub fn from_bytes(bytes: &[u8]) -> Option<LamportPublicKey> {
        if bytes.len() != BITS * 64 {
            return None;
        }
        let mut pairs = Vec::with_capacity(BITS);
        for i in 0..BITS {
            let mut a = [0u8; 32];
            let mut b = [0u8; 32];
            a.copy_from_slice(&bytes[i * 64..i * 64 + 32]);
            b.copy_from_slice(&bytes[i * 64 + 32..i * 64 + 64]);
            pairs.push([a, b]);
        }
        Some(LamportPublicKey { pairs: pairs.into_boxed_slice() })
    }

    /// A 32-byte fingerprint of the key, convenient for pinning.
    pub fn fingerprint(&self) -> Digest {
        sha256(&self.to_bytes())
    }
}

impl LamportSignature {
    /// Serializes the signature (256 digests = 8 KiB).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BITS * 32);
        for r in self.reveals.iter() {
            out.extend_from_slice(r);
        }
        out
    }

    /// Deserializes a signature; `None` on wrong length.
    pub fn from_bytes(bytes: &[u8]) -> Option<LamportSignature> {
        if bytes.len() != BITS * 32 {
            return None;
        }
        let mut reveals = Vec::with_capacity(BITS);
        for i in 0..BITS {
            let mut d = [0u8; 32];
            d.copy_from_slice(&bytes[i * 32..i * 32 + 32]);
            reveals.push(d);
        }
        Some(LamportSignature { reveals: reveals.into_boxed_slice() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = LamportKeyPair::from_seed(&[7u8; 32]);
        let sig = kp.sign(b"snapshot digest 0001");
        assert!(kp.public_key().verify(b"snapshot digest 0001", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = LamportKeyPair::from_seed(&[7u8; 32]);
        let sig = kp.sign(b"legit");
        assert!(!kp.public_key().verify(b"forged", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = LamportKeyPair::from_seed(&[9u8; 32]);
        let sig = kp.sign(b"m");
        let mut bytes = sig.to_bytes();
        bytes[0] ^= 1;
        let bad = LamportSignature::from_bytes(&bytes).unwrap();
        assert!(!kp.public_key().verify(b"m", &bad));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = LamportKeyPair::from_seed(&[1u8; 32]);
        let kp2 = LamportKeyPair::from_seed(&[2u8; 32]);
        let sig = kp1.sign(b"m");
        assert!(!kp2.public_key().verify(b"m", &sig));
    }

    #[test]
    #[should_panic(expected = "reused")]
    fn double_sign_panics() {
        let kp = LamportKeyPair::from_seed(&[3u8; 32]);
        let _ = kp.sign(b"a");
        let _ = kp.sign(b"b");
    }

    #[test]
    fn public_key_serialization_roundtrip() {
        let kp = LamportKeyPair::from_seed(&[4u8; 32]);
        let pk = kp.public_key();
        let back = LamportPublicKey::from_bytes(&pk.to_bytes()).unwrap();
        assert_eq!(&back, pk);
        assert_eq!(back.fingerprint(), pk.fingerprint());
        assert!(LamportPublicKey::from_bytes(&[0u8; 3]).is_none());
    }

    #[test]
    fn deterministic_from_seed() {
        let a = LamportKeyPair::from_seed(&[5u8; 32]);
        let b = LamportKeyPair::from_seed(&[5u8; 32]);
        assert_eq!(a.public_key().fingerprint(), b.public_key().fingerprint());
    }
}
