//! The sequential page hash `Hs` (hash-page-on-read refinement, Section V).
//!
//! When a transaction reads page `P` from disk, the compliance plugin hashes
//! `P`'s tuples *in tuple-order-number order* and logs `(PGNO, Hs)` to the
//! compliance log. A commutative hash would work but costs 200+ bytes per
//! value; `Hs` is 32 bytes. The price is order sensitivity, which the
//! tuple-order-number attribute restores: tuples appear on `L` in the order
//! they were inserted into `P`, so the auditor can extend its reconstruction
//! of `Hs(P)` incrementally while scanning `L`.
//!
//! We realize `Hs` as an append-extendable chain
//!
//! `Hs₀ = SHA256("ccdb:Hs:v1")`, `Hsₙ = SHA256(Hsₙ₋₁ ‖ h(rₙ))`
//!
//! which is the paper's `Hs(r₁,…,rₙ) = H(h(r₁), Hs(r₂,…,rₙ))` read in
//! streaming form: one new tuple extends the chain in O(1).
//!
//! UNDO handling: when an aborted transaction's tuple is physically removed
//! from a page, the auditor must "roll back" the chain to just before that
//! tuple and re-chain the survivors. [`HsChain::of_hashes`] recomputes a chain
//! from a retained list of element hashes; the auditor keeps that per-page
//! list while scanning, preserving the single-pass structure.

use crate::sha256::{sha256, Digest, Sha256};

/// Domain-separation seed for the empty chain.
fn seed() -> Digest {
    sha256(b"ccdb:Hs:v1")
}

/// An append-extendable sequential hash chain.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct HsChain {
    state: Digest,
}

impl Default for HsChain {
    fn default() -> Self {
        HsChain::new()
    }
}

impl HsChain {
    /// The chain over the empty sequence.
    pub fn new() -> HsChain {
        HsChain { state: seed() }
    }

    /// Extends the chain with the *hash* of the next element.
    pub fn extend_hash(&mut self, element_hash: &Digest) {
        let mut h = Sha256::new();
        h.update(&self.state).update(element_hash);
        self.state = h.finalize();
    }

    /// Extends the chain with the next element (hashing it first).
    pub fn extend(&mut self, element: &[u8]) {
        self.extend_hash(&sha256(element));
    }

    /// The current chain value.
    pub fn value(&self) -> Digest {
        self.state
    }

    /// Computes the chain over a sequence of raw elements.
    pub fn of<'a>(items: impl IntoIterator<Item = &'a [u8]>) -> HsChain {
        let mut c = HsChain::new();
        for it in items {
            c.extend(it);
        }
        c
    }

    /// Recomputes a chain from already-hashed elements; used by the auditor
    /// to re-chain a page's surviving tuples after processing an `UNDO`.
    pub fn of_hashes<'a>(hashes: impl IntoIterator<Item = &'a Digest>) -> HsChain {
        let mut c = HsChain::new();
        for h in hashes {
            c.extend_hash(h);
        }
        c
    }
}

impl core::fmt::Debug for HsChain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Hs({}…)", crate::to_hex(&self.state[..8]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chains_agree() {
        assert_eq!(HsChain::new(), HsChain::default());
        assert_eq!(HsChain::of(core::iter::empty::<&[u8]>()), HsChain::new());
    }

    #[test]
    fn order_sensitive() {
        let ab = HsChain::of([b"a".as_slice(), b"b".as_slice()]);
        let ba = HsChain::of([b"b".as_slice(), b"a".as_slice()]);
        assert_ne!(ab, ba);
    }

    #[test]
    fn extension_is_incremental() {
        let mut c = HsChain::new();
        c.extend(b"one");
        c.extend(b"two");
        let full = HsChain::of([b"one".as_slice(), b"two".as_slice()]);
        assert_eq!(c, full);
    }

    #[test]
    fn of_hashes_matches_of() {
        let items: Vec<&[u8]> = vec![b"p", b"q", b"r"];
        let hashes: Vec<Digest> = items.iter().map(|i| sha256(i)).collect();
        assert_eq!(HsChain::of_hashes(hashes.iter()), HsChain::of(items));
    }

    #[test]
    fn undo_rollback_scenario() {
        // Page receives t1, t2(aborted), t3. After the UNDO of t2 the page
        // holds (t1, t3); the auditor rechains the survivors.
        let t1 = sha256(b"t1");
        let t2 = sha256(b"t2");
        let t3 = sha256(b"t3");
        let with_t2 = HsChain::of_hashes([&t1, &t2, &t3]);
        let without_t2 = HsChain::of_hashes([&t1, &t3]);
        assert_ne!(with_t2, without_t2);
        // A read before the abort must match the chain including t2:
        assert_eq!(HsChain::of([b"t1".as_slice(), b"t2".as_slice(), b"t3".as_slice()]), with_t2);
    }

    #[test]
    fn not_length_extension_trivial() {
        // A chain over [x] differs from the bare hash of x.
        let mut c = HsChain::new();
        c.extend(b"x");
        assert_ne!(c.value(), sha256(b"x"));
    }
}
