//! Cryptographic primitives for the compliant DBMS, implemented from scratch.
//!
//! The paper's architecture needs four primitives:
//!
//! * a conventional secure one-way hash `h` — [`sha256`], a FIPS 180-4
//!   SHA-256 implementation validated against the NIST test vectors;
//! * the **ADD-HASH** commutative incremental *set* hash of Bellare and
//!   Micciancio (`H({a₁..aₙ}) = Σ h'(aᵢ) mod 2⁵¹²`) — [`addhash`] — which the
//!   auditor uses for the single-pass tuple-completeness check
//!   `H(Ds ∪ L) = H(Df)`;
//! * the **sequential page hash** `Hs` — [`seqhash`] — an append-extendable
//!   hash chain over a page's tuples in tuple-order-number order, logged by
//!   the hash-page-on-read refinement and replayed by the auditor;
//! * a **digital signature** for the auditor's snapshot attestations —
//!   [`lamport`], Lamport one-time signatures over SHA-256 (the paper only
//!   needs "the auditor's digital signature testifying that the snapshot is
//!   correct"; an OTS per audit is exactly that).

pub mod addhash;
pub mod lamport;
pub mod seqhash;
pub mod sha256;

pub use addhash::AddHash;
pub use lamport::{LamportKeyPair, LamportPublicKey, LamportSignature};
pub use seqhash::HsChain;
pub use sha256::{sha256, Digest, Sha256};

/// Renders a digest (or any byte string) as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_rendering() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(to_hex(&[]), "");
    }
}
