//! ADD-HASH: the commutative, incremental set hash of Bellare & Micciancio.
//!
//! `H({a₁, …, aₙ}) = Σᵢ h'(aᵢ)  (mod 2⁵¹²)`
//!
//! where `h'` expands each element to 512 bits via two domain-separated
//! SHA-256 invocations. The three properties the auditor relies on:
//!
//! * **Incremental** — given `H(S)` and a new element `a`, `H(S ∪ {a})` is one
//!   hash plus one 512-bit addition; the auditor folds the snapshot, the
//!   compliance log, and the final state in a single pass each.
//! * **Commutative** — the value is independent of element order, so neither
//!   the log nor the new snapshot needs sorting (the paper's baseline check
//!   sorts `L`, costing `O(|L| log |L|)`; this is the optimization that
//!   removes it).
//! * **Pre-image resistant** — forging a different multiset with the same sum
//!   reduces to a knapsack-style problem over a 512-bit modulus.
//!
//! We additionally expose `remove`, the exact inverse of `add` under the
//! power-of-two modulus; the auditor uses it when recomputing snapshot page
//! hashes after auditable vacuuming (Section VIII).
//!
//! Note the *multiset* semantics: adding an element twice is not idempotent.
//! The auditor deduplicates `NEW_TUPLE` records (which recovery can duplicate)
//! before folding, exactly as the paper prescribes.

use crate::sha256::Sha256;

/// Number of 64-bit limbs in the 512-bit accumulator.
const LIMBS: usize = 8;

/// A 512-bit commutative incremental multiset hash accumulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddHash {
    /// Little-endian limbs of the running sum modulo 2⁵¹².
    limbs: [u64; LIMBS],
}

impl Default for AddHash {
    fn default() -> Self {
        AddHash::new()
    }
}

impl AddHash {
    /// The hash of the empty set.
    pub fn new() -> AddHash {
        AddHash { limbs: [0; LIMBS] }
    }

    /// Expands one element to its 512-bit contribution
    /// `h'(a) = SHA256(0x00‖a) ‖ SHA256(0x01‖a)` interpreted as limbs.
    fn element_limbs(element: &[u8]) -> [u64; LIMBS] {
        let mut lo = Sha256::new();
        lo.update(&[0x00]).update(element);
        let d0 = lo.finalize();
        let mut hi = Sha256::new();
        hi.update(&[0x01]).update(element);
        let d1 = hi.finalize();
        let mut limbs = [0u64; LIMBS];
        for i in 0..4 {
            limbs[i] = u64::from_le_bytes(d0[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            limbs[i + 4] = u64::from_le_bytes(d1[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        limbs
    }

    /// Adds an element to the multiset.
    #[allow(clippy::needless_range_loop)] // lockstep carry chain over two arrays
    pub fn add(&mut self, element: &[u8]) {
        let e = Self::element_limbs(element);
        let mut carry = 0u64;
        for i in 0..LIMBS {
            let (s1, c1) = self.limbs[i].overflowing_add(e[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        // Final carry is discarded: arithmetic is modulo 2^512.
    }

    /// Removes an element previously added. `remove` is the exact inverse of
    /// [`AddHash::add`]; removing an element that was never added silently
    /// yields the hash of the (ill-defined) difference, which will simply
    /// fail to match any honestly computed hash.
    #[allow(clippy::needless_range_loop)] // lockstep borrow chain over two arrays
    pub fn remove(&mut self, element: &[u8]) {
        let e = Self::element_limbs(element);
        let mut borrow = 0u64;
        for i in 0..LIMBS {
            let (s1, b1) = self.limbs[i].overflowing_sub(e[i]);
            let (s2, b2) = s1.overflowing_sub(borrow);
            self.limbs[i] = s2;
            borrow = (b1 as u64) + (b2 as u64);
        }
    }

    /// Merges another accumulator into this one
    /// (`H(S ∪ T)` for disjoint multisets, by linearity of the sum).
    pub fn merge(&mut self, other: &AddHash) {
        let mut carry = 0u64;
        for i in 0..LIMBS {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
    }

    /// Serializes the accumulator to 64 bytes (little-endian limbs).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        for (i, l) in self.limbs.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&l.to_le_bytes());
        }
        out
    }

    /// Deserializes a 64-byte accumulator.
    pub fn from_bytes(bytes: &[u8; 64]) -> AddHash {
        let mut limbs = [0u64; LIMBS];
        for (i, l) in limbs.iter_mut().enumerate() {
            *l = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        AddHash { limbs }
    }

    /// Hashes an iterator of elements in one call.
    pub fn of<'a>(items: impl IntoIterator<Item = &'a [u8]>) -> AddHash {
        let mut h = AddHash::new();
        for it in items {
            h.add(it);
        }
        h
    }
}

impl core::fmt::Debug for AddHash {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "AddHash({}…)", crate::to_hex(&self.to_bytes()[..8]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hash_is_zero() {
        assert_eq!(AddHash::new().to_bytes(), [0u8; 64]);
    }

    #[test]
    fn commutative() {
        let mut a = AddHash::new();
        a.add(b"x");
        a.add(b"y");
        a.add(b"z");
        let mut b = AddHash::new();
        b.add(b"z");
        b.add(b"x");
        b.add(b"y");
        assert_eq!(a, b);
    }

    #[test]
    fn remove_inverts_add() {
        let mut a = AddHash::new();
        a.add(b"alpha");
        a.add(b"beta");
        let snapshot = a;
        a.add(b"gamma");
        a.remove(b"gamma");
        assert_eq!(a, snapshot);
    }

    #[test]
    fn multiset_not_set_semantics() {
        let mut once = AddHash::new();
        once.add(b"t");
        let mut twice = AddHash::new();
        twice.add(b"t");
        twice.add(b"t");
        assert_ne!(once, twice);
    }

    #[test]
    fn different_sets_differ() {
        let a = AddHash::of([b"a".as_slice(), b"b".as_slice()]);
        let b = AddHash::of([b"a".as_slice(), b"c".as_slice()]);
        assert_ne!(a, b);
    }

    #[test]
    fn merge_is_union() {
        let mut a = AddHash::new();
        a.add(b"1");
        a.add(b"2");
        let mut b = AddHash::new();
        b.add(b"3");
        let mut merged = a;
        merged.merge(&b);
        let direct = AddHash::of([b"1".as_slice(), b"2".as_slice(), b"3".as_slice()]);
        assert_eq!(merged, direct);
        // merge must not mutate the argument
        let mut b2 = AddHash::new();
        b2.add(b"3");
        assert_eq!(b, b2);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut a = AddHash::new();
        a.add(b"round");
        a.add(b"trip");
        let bytes = a.to_bytes();
        assert_eq!(AddHash::from_bytes(&bytes), a);
    }

    #[test]
    fn element_domain_separation() {
        // h'(a) must not collide with SHA-256 reuse: check "ab","c" vs "a","bc"
        let x = AddHash::of([b"ab".as_slice(), b"c".as_slice()]);
        let y = AddHash::of([b"a".as_slice(), b"bc".as_slice()]);
        assert_ne!(x, y);
    }

    #[test]
    fn carries_propagate() {
        // Exercise enough elements that limb carries certainly occur.
        let mut acc = AddHash::new();
        let items: Vec<Vec<u8>> = (0..500u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for it in &items {
            acc.add(it);
        }
        // Remove in a different order; must return to zero.
        for it in items.iter().rev() {
            acc.remove(it);
        }
        assert_eq!(acc, AddHash::new());
    }
}
