//! Additional WORM-server contract tests: the immutability guarantees the
//! whole architecture rests on, exercised at the API boundary.

use std::path::PathBuf;
use std::sync::Arc;

use ccdb_common::{Duration, Error, Timestamp, VirtualClock};
use ccdb_worm::WormServer;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "ccdb-worm-edge-{}-{}-{}",
            std::process::id(),
            tag,
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn server(tag: &str) -> (Arc<WormServer>, Arc<VirtualClock>, TempDir) {
    let d = TempDir::new(tag);
    let clock = Arc::new(VirtualClock::new());
    let s = Arc::new(WormServer::open(&d.0, clock.clone()).unwrap());
    (s, clock, d)
}

#[test]
fn there_is_no_overwrite_api_only_append() {
    // The type system is the proof: the only mutation paths are create /
    // append / seal / extend_retention / delete-after-expiry. This test
    // documents the byte-level consequence: earlier offsets never change.
    let (s, _c, _d) = server("append-only");
    let f = s.create("log", Timestamp::MAX).unwrap();
    s.append(&f, b"first").unwrap();
    let before = s.read_at("log", 0, 5).unwrap();
    for _ in 0..50 {
        s.append(&f, b"more").unwrap();
    }
    assert_eq!(s.read_at("log", 0, 5).unwrap(), before);
    assert_eq!(s.stat("log").unwrap().len, 5 + 50 * 4);
}

#[test]
fn deletion_is_whole_file_and_only_after_retention() {
    let (s, clock, _d) = server("deletion");
    s.create("evidence", Timestamp(1_000)).unwrap();
    // Before expiry: refused no matter how often asked.
    for _ in 0..3 {
        assert!(matches!(s.delete("evidence"), Err(Error::WormViolation(_))));
    }
    clock.advance_to(Timestamp(1_000));
    s.delete("evidence").unwrap();
    // Deleted means gone — and the name can be reused only via create
    // (fresh create time, fresh retention).
    assert!(!s.exists("evidence"));
    clock.advance(Duration::from_secs(1));
    s.create("evidence", Timestamp::MAX).unwrap();
    assert_eq!(s.stat("evidence").unwrap().len, 0);
}

#[test]
fn create_times_are_monotone_with_the_compliance_clock() {
    let (s, clock, _d) = server("clock");
    let mut last = Timestamp(0);
    for i in 0..10 {
        clock.advance(Duration::from_secs(1));
        s.create(&format!("f{i}"), Timestamp::MAX).unwrap();
        let ct = s.stat(&format!("f{i}")).unwrap().create_time;
        assert!(ct > last);
        last = ct;
    }
}

#[test]
fn metadata_survives_many_reopen_cycles() {
    let d = TempDir::new("cycles");
    let clock = Arc::new(VirtualClock::new());
    for round in 0..5u64 {
        let s = WormServer::open(&d.0, clock.clone()).unwrap();
        let name = format!("round-{round}");
        let f = s.create(&name, Timestamp::MAX).unwrap();
        s.append(&f, &round.to_le_bytes()).unwrap();
        s.seal(&name).unwrap();
        // All earlier rounds still intact and sealed.
        for r in 0..=round {
            let n = format!("round-{r}");
            let meta = s.stat(&n).unwrap();
            assert!(meta.sealed);
            assert_eq!(s.read_all(&n).unwrap(), r.to_le_bytes());
        }
        clock.advance(Duration::from_secs(1));
    }
}

#[test]
fn listing_is_stable_under_interleaved_creates_and_deletes() {
    let (s, clock, _d) = server("list");
    for i in 0..20 {
        let retention = if i % 2 == 0 { Timestamp(10) } else { Timestamp::MAX };
        s.create(&format!("x/{i:02}"), retention).unwrap();
    }
    clock.advance_to(Timestamp(10));
    for i in (0..20).step_by(2) {
        s.delete(&format!("x/{i:02}")).unwrap();
    }
    let names: Vec<String> = s.list("x/").into_iter().map(|(n, _)| n).collect();
    assert_eq!(names.len(), 10);
    assert!(names.windows(2).all(|w| w[0] < w[1]), "sorted: {names:?}");
    assert!(names.iter().all(|n| {
        let i: usize = n.trim_start_matches("x/").parse().unwrap();
        i % 2 == 1
    }));
}

#[test]
fn appends_to_deleted_file_fail() {
    let (s, clock, _d) = server("stale-handle");
    let f = s.create("gone", Timestamp(5)).unwrap();
    s.append(&f, b"x").unwrap();
    clock.advance_to(Timestamp(5));
    s.delete("gone").unwrap();
    assert!(matches!(s.append(&f, b"y"), Err(Error::NotFound(_))));
}
