//! The WORM server implementation.

use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ccdb_common::sync::Mutex;
use ccdb_common::{ByteReader, ClockRef, Error, Result, Timestamp};
use ccdb_storage::fault::{FaultInjector, Injection, IoPoint};

use crate::meta::{FileMeta, MetaEvent};

/// Aggregate statistics the benchmark harness reports (space-overhead table).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WormStats {
    /// Number of live (undeleted) files.
    pub files: u64,
    /// Total payload bytes across live files.
    pub bytes: u64,
    /// Total appends served.
    pub appends: u64,
}

struct Inner {
    meta: BTreeMap<String, FileMeta>,
    journal: fs::File,
    appends: u64,
}

/// The trusted WORM compliance server. See the crate docs for the contract.
///
/// # Tenant namespaces
///
/// One physical volume can be shared by many tenants: [`WormServer::namespace`]
/// returns a *view* whose file names are transparently prefixed (e.g.
/// `tenants/acme/` + `L/epoch-0`). Views share the volume's metadata journal,
/// compliance clock, and fault injector, so cross-tenant create/append order
/// is recorded in one globally verifiable journal while each tenant's
/// compliance artifacts (`L`, stamp index, witnesses, snapshots, WAL tails)
/// live under its own prefix and are listed/audited in isolation.
pub struct WormServer {
    root: PathBuf,
    clock: ClockRef,
    inner: std::sync::Arc<Mutex<Inner>>,
    injector: std::sync::Arc<Mutex<Option<std::sync::Arc<FaultInjector>>>>,
    /// Name prefix of this view (`""` for the root view; otherwise ends in
    /// `/`). Applied to every name-taking operation.
    ns: String,
}

/// A cheap named handle to a WORM file (no open file descriptor is held; the
/// simulator re-opens per operation, which keeps crash simulation trivial).
#[derive(Clone, Debug)]
pub struct WormFile {
    name: String,
}

impl WormFile {
    /// The file's name within the server namespace.
    pub fn name(&self) -> &str {
        &self.name
    }
}

fn incremental_checksum(prev: u32, data: &[u8]) -> u32 {
    // FNV-1a continued from the previous state: equivalent to hashing the
    // whole concatenation because FNV is a plain left-fold.
    let mut h = prev;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Initial FNV state for an empty file.
const EMPTY_CHECKSUM: u32 = 0x811c_9dc5;

impl WormServer {
    /// Creates or re-opens a WORM volume rooted at `root`. The `clock` is the
    /// server's *compliance clock*: in deployments the appliance has its own
    /// secure clock; callers must hand the server a clock the DBMS cannot
    /// manipulate (tests pass the shared virtual clock, which is fine because
    /// the simulated adversary never touches it).
    pub fn open(root: impl AsRef<Path>, clock: ClockRef) -> Result<WormServer> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(root.join("data"))
            .map_err(|e| Error::io("creating WORM data directory", e))?;
        let journal_path = root.join("meta.journal");
        let mut meta = BTreeMap::new();
        if journal_path.exists() {
            let bytes = fs::read(&journal_path)
                .map_err(|e| Error::io("reading WORM metadata journal", e))?;
            let mut r = ByteReader::new(&bytes);
            while !r.is_exhausted() {
                match MetaEvent::decode(&mut r)? {
                    MetaEvent::Create { name, create_time, retention_until } => {
                        meta.insert(
                            name,
                            FileMeta {
                                create_time,
                                retention_until,
                                sealed: false,
                                len: 0,
                                checksum: EMPTY_CHECKSUM,
                            },
                        );
                    }
                    MetaEvent::Append { name, new_len, new_checksum } => {
                        if let Some(m) = meta.get_mut(&name) {
                            m.len = new_len;
                            m.checksum = new_checksum;
                        }
                    }
                    MetaEvent::Seal { name } => {
                        if let Some(m) = meta.get_mut(&name) {
                            m.sealed = true;
                        }
                    }
                    MetaEvent::ExtendRetention { name, retention_until } => {
                        if let Some(m) = meta.get_mut(&name) {
                            m.retention_until = m.retention_until.max(retention_until);
                        }
                    }
                    MetaEvent::Delete { name } => {
                        meta.remove(&name);
                    }
                }
            }
        }
        let journal = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| Error::io("opening WORM metadata journal", e))?;
        let server = WormServer {
            root,
            clock,
            inner: std::sync::Arc::new(Mutex::new(Inner { meta, journal, appends: 0 })),
            injector: std::sync::Arc::new(Mutex::new(None)),
            ns: String::new(),
        };
        server.reconcile_backing_store()?;
        Ok(server)
    }

    /// A namespaced view of this volume: every name is prefixed with
    /// `prefix/`. Views share the underlying journal, clock, and injector;
    /// namespaces nest (`a` then `b` ⇒ `a/b/…`). The prefix obeys the same
    /// validation rules as file names.
    pub fn namespace(&self, prefix: &str) -> Result<WormServer> {
        Self::validate_name(prefix)?;
        Ok(WormServer {
            root: self.root.clone(),
            clock: self.clock.clone(),
            inner: self.inner.clone(),
            injector: self.injector.clone(),
            ns: format!("{}{prefix}/", self.ns),
        })
    }

    /// This view's name prefix (`""` for the root view).
    pub fn namespace_prefix(&self) -> &str {
        &self.ns
    }

    /// Qualifies a caller-visible name with this view's namespace prefix.
    fn qualify(&self, name: &str) -> String {
        format!("{}{name}", self.ns)
    }

    /// Startup reconciliation: appends write the data file *before* the
    /// trusted metadata journal acknowledges them, so a crash (or injected
    /// torn write) mid-append can leave the backing file **longer** than the
    /// trusted length. Those tail bytes were never acknowledged — the append
    /// RPC returned an error — so discarding them is not a WORM deletion; it
    /// is the appliance firmware rolling back an incomplete operation.
    ///
    /// A backing file **shorter** than the trusted length is the opposite
    /// situation: acknowledged bytes are gone. That is evidence of tampering
    /// (retention violation), and reconciliation deliberately leaves it in
    /// place for `read_all`/the auditor to report.
    fn reconcile_backing_store(&self) -> Result<()> {
        let inner = self.inner.lock();
        for (name, m) in inner.meta.iter() {
            let path = self.data_path(name);
            let on_disk = match fs::metadata(&path) {
                Ok(md) => md.len(),
                Err(_) => continue, // missing file: surfaced later as a read failure
            };
            if on_disk > m.len {
                let f = fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| Error::io("opening WORM file for reconciliation", e))?;
                f.set_len(m.len)
                    .map_err(|e| Error::io("truncating unacknowledged WORM append tail", e))?;
            }
        }
        Ok(())
    }

    /// Installs (or clears) a deterministic fault injector on the append
    /// path. Testing hook; see [`ccdb_storage::fault`].
    pub fn set_fault_injector(&self, injector: Option<std::sync::Arc<FaultInjector>>) {
        *self.injector.lock() = injector;
    }

    /// Raw length of the backing data file for `name`, bypassing the trusted
    /// metadata. The auditor compares this against `stat(name).len` to
    /// distinguish tail truncation (tampering) from unacknowledged appends.
    pub fn backing_len(&self, name: &str) -> Result<u64> {
        let name = self.qualify(name);
        let inner = self.inner.lock();
        if !inner.meta.contains_key(&name) {
            return Err(Error::NotFound(format!("WORM file {name:?}")));
        }
        drop(inner);
        fs::metadata(self.data_path(&name))
            .map(|md| md.len())
            .map_err(|e| Error::io(format!("statting WORM backing file {name:?}"), e))
    }

    fn data_path(&self, name: &str) -> PathBuf {
        // Namespace separators become directory separators on the backing
        // filesystem; names are validated to prevent traversal.
        self.root.join("data").join(name)
    }

    fn validate_name(name: &str) -> Result<()> {
        if name.is_empty()
            || name.starts_with('/')
            || name.split('/').any(|c| c.is_empty() || c == "." || c == "..")
        {
            return Err(Error::Invalid(format!("invalid WORM file name {name:?}")));
        }
        Ok(())
    }

    fn journal(inner: &mut Inner, ev: &MetaEvent) -> Result<()> {
        inner
            .journal
            .write_all(&ev.encode())
            .map_err(|e| Error::io("appending to WORM metadata journal", e))?;
        inner.journal.flush().map_err(|e| Error::io("flushing WORM metadata journal", e))
    }

    /// The server's trusted compliance-clock reading.
    pub fn compliance_now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Creates a new file with the given retention horizon. Fails if the name
    /// already exists — WORM files are never recreated in place (that is the
    /// whole point).
    pub fn create(&self, name: &str, retention_until: Timestamp) -> Result<WormFile> {
        Self::validate_name(name)?;
        let name = &self.qualify(name);
        let mut inner = self.inner.lock();
        if inner.meta.contains_key(name) {
            return Err(Error::WormViolation(format!(
                "file {name:?} already exists and may not be recreated"
            )));
        }
        let create_time = self.clock.now();
        let path = self.data_path(name);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| Error::io("creating WORM subdirectory", e))?;
        }
        fs::OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(|e| Error::io(format!("creating WORM file {name:?}"), e))?;
        let ev = MetaEvent::Create { name: name.to_string(), create_time, retention_until };
        Self::journal(&mut inner, &ev)?;
        inner.meta.insert(
            name.to_string(),
            FileMeta {
                create_time,
                retention_until,
                sealed: false,
                len: 0,
                checksum: EMPTY_CHECKSUM,
            },
        );
        Ok(WormFile { name: name.to_string() })
    }

    /// Appends bytes to an existing, unsealed file. This is the only write
    /// operation the server offers.
    pub fn append(&self, file: &WormFile, data: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        let m = inner
            .meta
            .get(&file.name)
            .ok_or_else(|| Error::NotFound(format!("WORM file {:?}", file.name)))?
            .clone();
        if m.sealed {
            return Err(Error::WormViolation(format!(
                "file {:?} is sealed; appends are refused",
                file.name
            )));
        }
        // Fault-injection point: the data file is written *before* the
        // metadata journal acknowledges the append, so a fault here (full
        // crash or torn prefix) leaves unacknowledged bytes that
        // `reconcile_backing_store` truncates on reopen. The append-only
        // contract holds under every injected failure: trusted metadata
        // never acknowledges bytes that were not durably written.
        let injection = {
            let inj = self.injector.lock().clone();
            match inj {
                Some(inj) => inj.check(IoPoint::WormAppend, data.len()),
                None => Injection::Proceed,
            }
        };
        let torn_keep = match injection {
            Injection::Proceed => None,
            Injection::Fail(e) => return Err(e),
            Injection::Torn { keep } => Some(keep),
        };
        let path = self.data_path(&file.name);
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| Error::io(format!("opening WORM file {:?} for append", file.name), e))?;
        if let Some(keep) = torn_keep {
            // Persist only a prefix and fail WITHOUT journaling: the trusted
            // metadata must never admit bytes the device did not accept.
            f.write_all(&data[..keep]).map_err(|e| Error::io("torn WORM append", e))?;
            let _ = f.flush();
            return Err(Error::injected(format!(
                "torn append to WORM file {:?} ({keep} of {} bytes kept)",
                file.name,
                data.len()
            )));
        }
        f.write_all(data)
            .map_err(|e| Error::io(format!("appending to WORM file {:?}", file.name), e))?;
        f.flush().map_err(|e| Error::io("flushing WORM append", e))?;
        let new_len = m.len + data.len() as u64;
        let new_checksum = incremental_checksum(m.checksum, data);
        let ev = MetaEvent::Append { name: file.name.clone(), new_len, new_checksum };
        Self::journal(&mut inner, &ev)?;
        let m = inner.meta.get_mut(&file.name).expect("checked above");
        m.len = new_len;
        m.checksum = new_checksum;
        inner.appends += 1;
        Ok(())
    }

    /// Reads `len` bytes at `offset`. Short reads at end-of-file are errors:
    /// the trusted metadata says how long the file is.
    pub fn read_at(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.read_at_full(&self.qualify(name), offset, len)
    }

    fn read_at_full(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let inner = self.inner.lock();
        let m =
            inner.meta.get(name).ok_or_else(|| Error::NotFound(format!("WORM file {name:?}")))?;
        if offset + len as u64 > m.len {
            return Err(Error::Invalid(format!(
                "read past end of WORM file {name:?} ({} + {} > {})",
                offset, len, m.len
            )));
        }
        let path = self.data_path(name);
        let mut f = fs::File::open(&path)
            .map_err(|e| Error::io(format!("opening WORM file {name:?}"), e))?;
        f.seek(SeekFrom::Start(offset)).map_err(|e| Error::io("seeking WORM file", e))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf).map_err(|e| Error::io(format!("reading WORM file {name:?}"), e))?;
        Ok(buf)
    }

    /// Reads the whole file, verifying the trusted running checksum — the
    /// simulator's stand-in for appliance firmware integrity.
    pub fn read_all(&self, name: &str) -> Result<Vec<u8>> {
        let name = &self.qualify(name);
        let (len, expect) = {
            let inner = self.inner.lock();
            let m = inner
                .meta
                .get(name)
                .ok_or_else(|| Error::NotFound(format!("WORM file {name:?}")))?;
            (m.len, m.checksum)
        };
        let data = self.read_at_full(name, 0, len as usize)?;
        let got = incremental_checksum(EMPTY_CHECKSUM, &data);
        if got != expect {
            return Err(Error::corruption(format!(
                "WORM backing store for {name:?} does not match trusted checksum; \
                 the simulation's trust assumption was violated"
            )));
        }
        Ok(data)
    }

    /// Permanently closes a file to appends.
    pub fn seal(&self, name: &str) -> Result<()> {
        let name = &self.qualify(name);
        let mut inner = self.inner.lock();
        if !inner.meta.contains_key(name) {
            return Err(Error::NotFound(format!("WORM file {name:?}")));
        }
        let ev = MetaEvent::Seal { name: name.to_string() };
        Self::journal(&mut inner, &ev)?;
        inner.meta.get_mut(name).expect("checked").sealed = true;
        Ok(())
    }

    /// Extends (never shortens) a file's retention horizon.
    pub fn extend_retention(&self, name: &str, until: Timestamp) -> Result<()> {
        let name = &self.qualify(name);
        let mut inner = self.inner.lock();
        let m =
            inner.meta.get(name).ok_or_else(|| Error::NotFound(format!("WORM file {name:?}")))?;
        if until <= m.retention_until {
            return Ok(()); // extending to an earlier time is a silent no-op
        }
        let ev = MetaEvent::ExtendRetention { name: name.to_string(), retention_until: until };
        Self::journal(&mut inner, &ev)?;
        inner.meta.get_mut(name).expect("checked").retention_until = until;
        Ok(())
    }

    /// Deletes a whole file — refused, for anyone, before the retention
    /// period has elapsed on the compliance clock. "The unit of deletion on
    /// WORM is an entire file" (Section VIII).
    pub fn delete(&self, name: &str) -> Result<()> {
        let name = &self.qualify(name);
        let mut inner = self.inner.lock();
        let m =
            inner.meta.get(name).ok_or_else(|| Error::NotFound(format!("WORM file {name:?}")))?;
        let now = self.clock.now();
        if now < m.retention_until {
            return Err(Error::WormViolation(format!(
                "file {name:?} is under retention until {:?} (now {:?}); deletion refused",
                m.retention_until, now
            )));
        }
        let ev = MetaEvent::Delete { name: name.to_string() };
        Self::journal(&mut inner, &ev)?;
        inner.meta.remove(name);
        let path = self.data_path(name);
        fs::remove_file(&path)
            .map_err(|e| Error::io(format!("deleting expired WORM file {name:?}"), e))?;
        Ok(())
    }

    /// Trusted metadata for a file.
    pub fn stat(&self, name: &str) -> Result<FileMeta> {
        let name = &self.qualify(name);
        let inner = self.inner.lock();
        inner.meta.get(name).cloned().ok_or_else(|| Error::NotFound(format!("WORM file {name:?}")))
    }

    /// Whether the file exists (has been created and not expired+deleted).
    pub fn exists(&self, name: &str) -> bool {
        self.inner.lock().meta.contains_key(&self.qualify(name))
    }

    /// A handle to an existing file.
    pub fn handle(&self, name: &str) -> Result<WormFile> {
        let full = self.qualify(name);
        if self.inner.lock().meta.contains_key(&full) {
            Ok(WormFile { name: full })
        } else {
            Err(Error::NotFound(format!("WORM file {full:?}")))
        }
    }

    /// Lists live files whose names start with `prefix` (within this view's
    /// namespace), in name order, with their trusted metadata. Returned
    /// names are namespace-relative, so a tenant view never observes another
    /// tenant's artifacts.
    pub fn list(&self, prefix: &str) -> Vec<(String, FileMeta)> {
        let full = self.qualify(prefix);
        self.inner
            .lock()
            .meta
            .iter()
            .filter(|(n, _)| n.starts_with(&full))
            .map(|(n, m)| (n[self.ns.len()..].to_string(), m.clone()))
            .collect()
    }

    /// Aggregate statistics for reporting, scoped to this view's namespace
    /// (the root view reports the whole volume). `appends` is volume-global:
    /// it counts served append operations, not per-namespace traffic.
    pub fn stats(&self) -> WormStats {
        let inner = self.inner.lock();
        let scoped = inner.meta.iter().filter(|(n, _)| n.starts_with(&self.ns));
        WormStats {
            files: scoped.clone().count() as u64,
            bytes: scoped.map(|(_, m)| m.len).sum(),
            appends: inner.appends,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_common::{Duration, VirtualClock};
    use std::sync::Arc;

    fn server() -> (WormServer, Arc<VirtualClock>, tempdir::TempDir) {
        let clock = Arc::new(VirtualClock::new());
        let dir = tempdir::TempDir::new();
        let s = WormServer::open(dir.path(), clock.clone()).unwrap();
        (s, clock, dir)
    }

    // A minimal temp-dir helper so the crate has no dev-dependency on
    // an external tempfile crate.
    mod tempdir {
        use std::path::{Path, PathBuf};
        use std::sync::atomic::{AtomicU64, Ordering};

        static NEXT: AtomicU64 = AtomicU64::new(0);

        pub struct TempDir(PathBuf);

        impl TempDir {
            pub fn new() -> TempDir {
                let n = NEXT.fetch_add(1, Ordering::SeqCst);
                let p = std::env::temp_dir().join(format!(
                    "ccdb-worm-test-{}-{}",
                    std::process::id(),
                    n
                ));
                std::fs::create_dir_all(&p).unwrap();
                TempDir(p)
            }
            pub fn path(&self) -> &Path {
                &self.0
            }
        }

        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    #[test]
    fn create_append_read_roundtrip() {
        let (s, _, _d) = server();
        let f = s.create("L/epoch-0", Timestamp::MAX).unwrap();
        s.append(&f, b"hello ").unwrap();
        s.append(&f, b"worm").unwrap();
        assert_eq!(s.read_all("L/epoch-0").unwrap(), b"hello worm");
        assert_eq!(s.read_at("L/epoch-0", 6, 4).unwrap(), b"worm");
        assert_eq!(s.stat("L/epoch-0").unwrap().len, 10);
    }

    #[test]
    fn recreation_refused() {
        let (s, _, _d) = server();
        s.create("x", Timestamp::MAX).unwrap();
        let err = s.create("x", Timestamp::MAX).unwrap_err();
        assert!(matches!(err, Error::WormViolation(_)));
    }

    #[test]
    fn sealed_file_refuses_appends() {
        let (s, _, _d) = server();
        let f = s.create("log", Timestamp::MAX).unwrap();
        s.append(&f, b"a").unwrap();
        s.seal("log").unwrap();
        assert!(matches!(s.append(&f, b"b"), Err(Error::WormViolation(_))));
        // reads still work
        assert_eq!(s.read_all("log").unwrap(), b"a");
    }

    #[test]
    fn delete_before_retention_refused() {
        let (s, clock, _d) = server();
        s.create("keep", Timestamp(1_000_000)).unwrap();
        assert!(matches!(s.delete("keep"), Err(Error::WormViolation(_))));
        clock.advance(Duration::from_secs(1));
        s.delete("keep").unwrap();
        assert!(!s.exists("keep"));
    }

    #[test]
    fn retention_extends_never_shrinks() {
        let (s, clock, _d) = server();
        s.create("f", Timestamp(100)).unwrap();
        s.extend_retention("f", Timestamp(50)).unwrap(); // no-op
        assert_eq!(s.stat("f").unwrap().retention_until, Timestamp(100));
        s.extend_retention("f", Timestamp(500)).unwrap();
        assert_eq!(s.stat("f").unwrap().retention_until, Timestamp(500));
        clock.advance_to(Timestamp(200));
        assert!(s.delete("f").is_err());
        clock.advance_to(Timestamp(500));
        s.delete("f").unwrap();
    }

    #[test]
    fn create_times_come_from_compliance_clock() {
        let (s, clock, _d) = server();
        clock.advance_to(Timestamp(777));
        s.create("witness/0", Timestamp::MAX).unwrap();
        assert_eq!(s.stat("witness/0").unwrap().create_time, Timestamp(777));
    }

    #[test]
    fn list_by_prefix_ordered() {
        let (s, _, _d) = server();
        s.create("w/2", Timestamp::MAX).unwrap();
        s.create("w/1", Timestamp::MAX).unwrap();
        s.create("other", Timestamp::MAX).unwrap();
        let names: Vec<String> = s.list("w/").into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["w/1".to_string(), "w/2".to_string()]);
    }

    #[test]
    fn reopen_recovers_metadata() {
        let clock = Arc::new(VirtualClock::new());
        let dir = tempdir::TempDir::new();
        {
            let s = WormServer::open(dir.path(), clock.clone()).unwrap();
            let f = s.create("persist", Timestamp(123)).unwrap();
            s.append(&f, b"payload").unwrap();
            s.seal("persist").unwrap();
        }
        let s2 = WormServer::open(dir.path(), clock.clone()).unwrap();
        let m = s2.stat("persist").unwrap();
        assert_eq!(m.len, 7);
        assert!(m.sealed);
        assert_eq!(m.retention_until, Timestamp(123));
        assert_eq!(s2.read_all("persist").unwrap(), b"payload");
    }

    #[test]
    fn backing_store_tamper_detected_on_read() {
        // Violating the simulation's trust assumption must be loud.
        let (s, _, d) = server();
        let f = s.create("t", Timestamp::MAX).unwrap();
        s.append(&f, b"original").unwrap();
        std::fs::write(d.path().join("data/t"), b"tampered").unwrap();
        assert!(matches!(s.read_all("t"), Err(Error::Corruption(_))));
    }

    #[test]
    fn name_validation() {
        let (s, _, _d) = server();
        for bad in ["", "/abs", "a/../b", "a//b", "."] {
            assert!(s.create(bad, Timestamp::MAX).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn empty_file_is_valid_witness() {
        // Witness files are empty; create time is their whole content.
        let (s, clock, _d) = server();
        clock.advance_to(Timestamp(5));
        s.create("witness/interval-1", Timestamp::MAX).unwrap();
        assert_eq!(s.read_all("witness/interval-1").unwrap(), Vec::<u8>::new());
        assert_eq!(s.stat("witness/interval-1").unwrap().create_time, Timestamp(5));
    }

    #[test]
    fn injected_torn_append_is_never_acknowledged() {
        use ccdb_storage::{FaultInjector, FaultKind, FaultPlan};
        let clock = Arc::new(VirtualClock::new());
        let dir = tempdir::TempDir::new();
        {
            let s = WormServer::open(dir.path(), clock.clone()).unwrap();
            let f = s.create("L/e0", Timestamp::MAX).unwrap();
            // Tear the second append: only a prefix of the payload reaches the
            // backing file, and the trusted metadata never sees it.
            let inj = Arc::new(FaultInjector::armed(FaultPlan::single(
                IoPoint::WormAppend,
                2,
                FaultKind::Torn { keep_permille: 500 },
            )));
            s.set_fault_injector(Some(inj.clone()));
            s.append(&f, b"good-record|").unwrap();
            let err = s.append(&f, b"second-record").unwrap_err();
            assert!(err.is_injected(), "unexpected error {err:?}");
            // Trusted metadata still describes only the acknowledged bytes.
            assert_eq!(s.stat("L/e0").unwrap().len, 12);
            // …but the backing file is longer (the torn prefix).
            assert!(s.backing_len("L/e0").unwrap() > 12);
            // Post-crash: all further appends are suppressed (append-only
            // contract holds — the device never half-works).
            assert!(s.append(&f, b"more").unwrap_err().is_injected());
        }
        // Reopen = device restart. Reconciliation truncates the
        // unacknowledged tail; reads are consistent with trusted metadata.
        let s2 = WormServer::open(dir.path(), clock).unwrap();
        assert_eq!(s2.stat("L/e0").unwrap().len, 12);
        assert_eq!(s2.backing_len("L/e0").unwrap(), 12);
        assert_eq!(s2.read_all("L/e0").unwrap(), b"good-record|");
        // The file is still appendable — it was never sealed or corrupted.
        let f = s2.handle("L/e0").unwrap();
        s2.append(&f, b"after").unwrap();
        assert_eq!(s2.read_all("L/e0").unwrap(), b"good-record|after");
    }

    #[test]
    fn injected_transient_append_error_is_retryable() {
        use ccdb_storage::{FaultInjector, FaultKind, FaultPlan};
        let (s, _, _d) = server();
        let f = s.create("x", Timestamp::MAX).unwrap();
        let inj = Arc::new(FaultInjector::armed(FaultPlan::single(
            IoPoint::WormAppend,
            1,
            FaultKind::Transient,
        )));
        s.set_fault_injector(Some(inj));
        let err = s.append(&f, b"payload").unwrap_err();
        assert!(err.is_injected());
        // Nothing was written, nothing acknowledged.
        assert_eq!(s.stat("x").unwrap().len, 0);
        assert_eq!(s.backing_len("x").unwrap(), 0);
        // The retry succeeds (transient faults fire once).
        s.append(&f, b"payload").unwrap();
        assert_eq!(s.read_all("x").unwrap(), b"payload");
    }

    #[test]
    fn backing_len_exposes_tail_truncation() {
        // The accessor the auditor uses to call out WORM tampering.
        let (s, _, d) = server();
        let f = s.create("t", Timestamp::MAX).unwrap();
        s.append(&f, b"0123456789").unwrap();
        assert_eq!(s.backing_len("t").unwrap(), 10);
        let path = d.path().join("data/t");
        let fh = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        fh.set_len(4).unwrap();
        assert_eq!(s.backing_len("t").unwrap(), 4);
        assert_eq!(s.stat("t").unwrap().len, 10); // trusted length unchanged
    }

    #[test]
    fn reconcile_leaves_short_backing_files_alone() {
        // A SHORT backing file is tampering evidence; reopen must not mask it.
        let clock = Arc::new(VirtualClock::new());
        let dir = tempdir::TempDir::new();
        {
            let s = WormServer::open(dir.path(), clock.clone()).unwrap();
            let f = s.create("t", Timestamp::MAX).unwrap();
            s.append(&f, b"0123456789").unwrap();
        }
        let path = dir.path().join("data/t");
        let fh = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        fh.set_len(4).unwrap();
        drop(fh);
        let s2 = WormServer::open(dir.path(), clock).unwrap();
        assert_eq!(s2.backing_len("t").unwrap(), 4);
        assert_eq!(s2.stat("t").unwrap().len, 10);
        assert!(s2.read_all("t").is_err());
    }

    #[test]
    fn namespaces_isolate_names_and_share_the_journal() {
        let (s, _, _d) = server();
        let a = s.namespace("tenants/acme").unwrap();
        let b = s.namespace("tenants/bob").unwrap();
        // The same tenant-relative name is two distinct files on the volume.
        let fa = a.create("L/epoch-0", Timestamp::MAX).unwrap();
        let fb = b.create("L/epoch-0", Timestamp::MAX).unwrap();
        a.append(&fa, b"acme-records").unwrap();
        b.append(&fb, b"bob").unwrap();
        assert_eq!(a.read_all("L/epoch-0").unwrap(), b"acme-records");
        assert_eq!(b.read_all("L/epoch-0").unwrap(), b"bob");
        assert_eq!(a.stat("L/epoch-0").unwrap().len, 12);
        // Tenant views never see each other's artifacts…
        assert_eq!(a.list("").len(), 1);
        assert_eq!(b.list("L/").into_iter().map(|(n, _)| n).collect::<Vec<_>>(), ["L/epoch-0"]);
        assert!(!a.exists("tenants/bob/L/epoch-0"));
        // …but the root view sees both under their full names (one journal,
        // globally verifiable order).
        assert!(s.exists("tenants/acme/L/epoch-0"));
        assert!(s.exists("tenants/bob/L/epoch-0"));
        assert_eq!(s.list("tenants/").len(), 2);
        // Per-namespace stats; root stats cover the volume.
        assert_eq!(a.stats().files, 1);
        assert_eq!(a.stats().bytes, 12);
        assert_eq!(s.stats().files, 2);
        assert_eq!(s.stats().bytes, 15);
        // WORM semantics hold across views: acme's file is sealed for
        // everyone, under either name.
        a.seal("L/epoch-0").unwrap();
        assert!(matches!(a.append(&fa, b"x"), Err(Error::WormViolation(_))));
        assert!(s.stat("tenants/acme/L/epoch-0").unwrap().sealed);
    }

    #[test]
    fn namespace_survives_reopen() {
        let clock = Arc::new(VirtualClock::new());
        let dir = tempdir::TempDir::new();
        {
            let s = WormServer::open(dir.path(), clock.clone()).unwrap();
            let t = s.namespace("tenants/acme").unwrap();
            t.create("witness/e0-i0", Timestamp::MAX).unwrap();
            let f2 = t.create("L/epoch-0", Timestamp(9)).unwrap();
            t.append(&f2, b"payload").unwrap();
        }
        let s2 = WormServer::open(dir.path(), clock).unwrap();
        let t2 = s2.namespace("tenants/acme").unwrap();
        assert!(t2.exists("witness/e0-i0"));
        assert_eq!(t2.read_all("L/epoch-0").unwrap(), b"payload");
        assert_eq!(t2.stat("L/epoch-0").unwrap().retention_until, Timestamp(9));
    }

    #[test]
    fn namespace_prefix_is_validated() {
        let (s, _, _d) = server();
        for bad in ["", "/abs", "a/../b", "a//b"] {
            assert!(s.namespace(bad).is_err(), "{bad:?} accepted as namespace");
        }
        // Nesting composes prefixes.
        let t = s.namespace("tenants").unwrap().namespace("acme").unwrap();
        assert_eq!(t.namespace_prefix(), "tenants/acme/");
    }

    #[test]
    fn stats_track_files_and_bytes() {
        let (s, _, _d) = server();
        let a = s.create("a", Timestamp::MAX).unwrap();
        s.append(&a, &[0u8; 10]).unwrap();
        s.append(&a, &[0u8; 5]).unwrap();
        s.create("b", Timestamp::MAX).unwrap();
        let st = s.stats();
        assert_eq!(st.files, 2);
        assert_eq!(st.bytes, 15);
        assert_eq!(st.appends, 2);
    }
}
