//! Trusted per-file metadata and its append-only journal encoding.

use ccdb_common::{ByteReader, ByteWriter, Error, Result, Timestamp};

/// Trusted metadata the WORM server records for every file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileMeta {
    /// Create time per the server's compliance clock. Trusted by the auditor.
    pub create_time: Timestamp,
    /// The file may not be deleted before this instant. `Timestamp::MAX`
    /// means "indefinite hold".
    pub retention_until: Timestamp,
    /// Whether the file has been permanently closed to appends.
    pub sealed: bool,
    /// Current length in bytes.
    pub len: u64,
    /// Running FNV checksum of the contents (development integrity aid).
    pub checksum: u32,
}

/// One entry in the metadata journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaEvent {
    /// A file came into existence.
    Create { name: String, create_time: Timestamp, retention_until: Timestamp },
    /// Bytes were appended (new totals recorded).
    Append { name: String, new_len: u64, new_checksum: u32 },
    /// The file was permanently closed.
    Seal { name: String },
    /// Retention was extended (never shortened).
    ExtendRetention { name: String, retention_until: Timestamp },
    /// The (expired) file was deleted.
    Delete { name: String },
}

const TAG_CREATE: u8 = 1;
const TAG_APPEND: u8 = 2;
const TAG_SEAL: u8 = 3;
const TAG_EXTEND: u8 = 4;
const TAG_DELETE: u8 = 5;

impl MetaEvent {
    /// Encodes the event with a length prefix so the journal is
    /// self-delimiting.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = ByteWriter::new();
        match self {
            MetaEvent::Create { name, create_time, retention_until } => {
                body.put_u8(TAG_CREATE);
                body.put_str(name);
                body.put_u64(create_time.0);
                body.put_u64(retention_until.0);
            }
            MetaEvent::Append { name, new_len, new_checksum } => {
                body.put_u8(TAG_APPEND);
                body.put_str(name);
                body.put_u64(*new_len);
                body.put_u32(*new_checksum);
            }
            MetaEvent::Seal { name } => {
                body.put_u8(TAG_SEAL);
                body.put_str(name);
            }
            MetaEvent::ExtendRetention { name, retention_until } => {
                body.put_u8(TAG_EXTEND);
                body.put_str(name);
                body.put_u64(retention_until.0);
            }
            MetaEvent::Delete { name } => {
                body.put_u8(TAG_DELETE);
                body.put_str(name);
            }
        }
        let mut framed = ByteWriter::with_capacity(body.len() + 4);
        framed.put_u32(body.len() as u32);
        framed.put_bytes(body.as_slice());
        framed.into_vec()
    }

    /// Decodes one framed event from `r`.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<MetaEvent> {
        let frame = r.get_len_bytes()?;
        let mut b = ByteReader::new(frame);
        let tag = b.get_u8()?;
        let ev = match tag {
            TAG_CREATE => MetaEvent::Create {
                name: b.get_str()?,
                create_time: Timestamp(b.get_u64()?),
                retention_until: Timestamp(b.get_u64()?),
            },
            TAG_APPEND => MetaEvent::Append {
                name: b.get_str()?,
                new_len: b.get_u64()?,
                new_checksum: b.get_u32()?,
            },
            TAG_SEAL => MetaEvent::Seal { name: b.get_str()? },
            TAG_EXTEND => MetaEvent::ExtendRetention {
                name: b.get_str()?,
                retention_until: Timestamp(b.get_u64()?),
            },
            TAG_DELETE => MetaEvent::Delete { name: b.get_str()? },
            t => return Err(Error::corruption(format!("unknown WORM meta event tag {t}"))),
        };
        if !b.is_exhausted() {
            return Err(Error::corruption("trailing bytes in WORM meta event"));
        }
        Ok(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: MetaEvent) {
        let enc = ev.encode();
        let mut r = ByteReader::new(&enc);
        assert_eq!(MetaEvent::decode(&mut r).unwrap(), ev);
        assert!(r.is_exhausted());
    }

    #[test]
    fn all_events_roundtrip() {
        roundtrip(MetaEvent::Create {
            name: "L/epoch-0".into(),
            create_time: Timestamp(42),
            retention_until: Timestamp::MAX,
        });
        roundtrip(MetaEvent::Append { name: "x".into(), new_len: 100, new_checksum: 7 });
        roundtrip(MetaEvent::Seal { name: "x".into() });
        roundtrip(MetaEvent::ExtendRetention { name: "x".into(), retention_until: Timestamp(99) });
        roundtrip(MetaEvent::Delete { name: "x".into() });
    }

    #[test]
    fn stream_of_events_decodes_in_order() {
        let evs = vec![
            MetaEvent::Create {
                name: "a".into(),
                create_time: Timestamp(1),
                retention_until: Timestamp(2),
            },
            MetaEvent::Append { name: "a".into(), new_len: 5, new_checksum: 9 },
            MetaEvent::Seal { name: "a".into() },
        ];
        let mut buf = Vec::new();
        for e in &evs {
            buf.extend_from_slice(&e.encode());
        }
        let mut r = ByteReader::new(&buf);
        for e in &evs {
            assert_eq!(&MetaEvent::decode(&mut r).unwrap(), e);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn garbage_tag_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(1);
        w.put_u8(99);
        let v = w.into_vec();
        let mut r = ByteReader::new(&v);
        assert!(MetaEvent::decode(&mut r).is_err());
    }
}
