//! A WORM (write-once read-many) compliance storage server, simulated.
//!
//! This crate plays the role of the NetApp/EMC/IBM compliance filer that the
//! paper — and regulators — *trust*: "we trust that it records the metadata
//! and data of files correctly, and never overwrites a file during its
//! retention period. … We assume the server allows us to append to files, so
//! that it can hold logs." Its interface contract is all the architecture
//! depends on:
//!
//! * files are **append-only**: there is no API to overwrite or truncate;
//! * a file cannot be **deleted** (and then only whole) before its retention
//!   period ends, no matter who asks;
//! * file **create times** come from the server's own tamper-proof
//!   *compliance clock* (cf. SnapLock's "Compliance Clock"), which the
//!   auditor uses to detect hidden crashes and replaced logs;
//! * files may be **sealed** (permanently closed), after which even appends
//!   are refused — the compliance log file is sealed at each audit.
//!
//! The simulator keeps file payloads in ordinary files under a root
//! directory plus a trusted in-memory metadata table that is journaled to a
//! metadata log so a [`WormServer`] can be re-opened. In the threat model the
//! adversary may edit any *ordinary* DBMS file with a file editor but can
//! interact with WORM **only through this API** — which is precisely the
//! guarantee the real appliance provides. A per-file running checksum is
//! verified on read as a development aid (a real filer's firmware integrity),
//! not as a cryptographic defense.

mod meta;
mod server;

pub use server::{WormFile, WormServer, WormStats};

pub use meta::FileMeta;
