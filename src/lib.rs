//! **ccdb** — a regulatory-compliant (term-immutable) database management
//! system: a from-scratch Rust reproduction of *"An Architecture for
//! Regulatory Compliant Database Management"* (Mitra, Winslett, Snodgrass,
//! Yaduvanshi, Ambokar — ICDE 2009).
//!
//! The facade re-exports the workspace crates:
//!
//! * [`compliance`] (`ccdb-core`) — the paper's contribution: the
//!   log-consistent architecture ([`compliance::CompliantDb`]), the
//!   compliance logger/plugin, the auditor, hash-page-on-read, WORM
//!   migration, auditable shredding, litigation holds;
//! * [`engine`] — the transaction-time DBMS substrate (versioned relations,
//!   lazy timestamping, WAL, crash recovery);
//! * [`btree`] — versioned B+-trees and time-split B+-trees;
//! * [`storage`] — slotted pages, buffer pool, the pread/pwrite seam;
//! * [`wal`] — write-ahead logging;
//! * [`worm`] — the trusted WORM compliance-storage simulator;
//! * [`crypto`] — SHA-256, the commutative incremental set hash (ADD-HASH),
//!   the sequential page hash `Hs`, Lamport one-time signatures;
//! * [`adversary`] — "Mala", the threat-model attack toolkit;
//! * [`tpcc`] — the TPC-C workload used by the paper's evaluation;
//! * [`common`] — ids, clocks, errors, codecs.
//!
//! # Quickstart
//!
//! ```
//! use ccdb::compliance::{ComplianceConfig, CompliantDb, Mode};
//! use ccdb::btree::SplitPolicy;
//! use ccdb::common::{Duration, VirtualClock};
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join(format!("ccdb-doc-{}", std::process::id()));
//! let clock = Arc::new(VirtualClock::ticking(Duration::from_micros(10)));
//! let db = CompliantDb::open(&dir, clock, ComplianceConfig {
//!     mode: Mode::HashOnRead,
//!     ..ComplianceConfig::default()
//! }).unwrap();
//!
//! let accounts = db.create_relation("accounts", SplitPolicy::KeyOnly).unwrap();
//! let txn = db.begin().unwrap();
//! db.write(txn, accounts, b"alice", b"balance=100").unwrap();
//! db.commit(txn).unwrap();
//!
//! let report = db.audit().unwrap();
//! assert!(report.is_clean());
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub use ccdb_adversary as adversary;
pub use ccdb_btree as btree;
pub use ccdb_common as common;
pub use ccdb_core as compliance;
pub use ccdb_crypto as crypto;
pub use ccdb_engine as engine;
pub use ccdb_storage as storage;
pub use ccdb_tpcc as tpcc;
pub use ccdb_wal as wal;
pub use ccdb_worm as worm;
